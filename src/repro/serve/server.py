"""The resident analysis server (``repro serve``).

One :class:`ReproServer` owns the warm state the cold CLI rebuilds on every
invocation — prepared dataset bundles, the shared-memory arena of the
``process-shm`` filter backend, the worker pool — and serves requests over a
local stream socket with the newline-delimited JSON protocol of
:mod:`repro.serve.protocol`.  The moving parts, one module each:

* admission (:mod:`repro.serve.admission`): a bounded queue in front of a
  fixed worker-thread pool; overload is rejected with a ``busy`` error, never
  queued unboundedly;
* caching (:mod:`repro.serve.cache`): responses of the pure work ops are
  memoised under their spec hash, tagged with the dataset generation;
* coalescing (:mod:`repro.serve.coalesce`): concurrent enrichment requests
  batch into single scorer passes;
* warm state (:mod:`repro.serve.state`): per-dataset bundles with a
  drain-then-swap reload discipline.

Threading model: one accept thread, one connection thread per client (it
parses, admits and *waits* — cheap), ``workers`` executor threads (they run
the pipeline).  Every executor thread keeps the server's arena ambient via
:func:`~repro.parallel.shm.arena_scope`, so ``process-shm`` filter requests
export graph buffers into one long-lived arena instead of churning segments
per request.

``hooks`` exist for the concurrency tests: they are synchronisation points
(events/barriers), never sleeps, and all default to no-ops.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..faults import fault_point
from ..kernels import kernel_tier_info
from ..parallel.runner import comm_counters, shutdown_worker_pool, supervision_counters
from ..parallel.shm import SharedArena, arena_scope
from ..pipeline.experiments import default_scale as _default_scale
from .admission import AdmissionQueue, BusyError, ShuttingDownError
from .cache import ResultCache
from ..incremental import UpdateSpec
from .handlers import (
    CACHEABLE_OPS,
    HANDLERS,
    normalize_dataset_params,
    normalize_params,
    normalize_update_params,
)
from .protocol import (
    ERROR_BAD_REQUEST,
    ERROR_BUSY,
    ERROR_INTERNAL,
    ERROR_SHUTTING_DOWN,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    error_response,
    ok_response,
    parse_request,
    read_message,
    spec_hash,
    write_message,
)

__all__ = ["ServerHooks", "ReproServer"]


@dataclass
class ServerHooks:
    """Test-only synchronisation points along the request path (no-ops here).

    ``on_admit(op, spec_hash)`` fires on the connection thread after a work
    request is normalised, before admission; ``on_enqueued(op, spec_hash)``
    right after it was accepted into the admission queue — the happens-before
    edge the bounded-admission tests order their overflow submissions against.
    ``before_execute(op, spec_hash)`` fires on the executor thread after the
    cache miss, before the handler — tests park requests there to pin
    concurrent interleavings.  ``on_reload_drain(dataset_key)`` fires when a
    reload found in-flight requests to wait for.  ``batch_gate()`` /
    ``batch_submit(pending)`` are the enrichment batcher's drain gate and its
    submission-side counterpart (see
    :class:`~repro.serve.coalesce.EnrichmentBatcher`).
    """

    on_admit: Optional[Callable[[str, str], None]] = None
    on_enqueued: Optional[Callable[[str, str], None]] = None
    before_execute: Optional[Callable[[str, str], None]] = None
    on_reload_drain: Optional[Callable[[str], None]] = None
    batch_gate: Optional[Callable[[], None]] = None
    batch_submit: Optional[Callable[[int], None]] = None


class ReproServer:
    """Resident warm-state analysis service over a local socket."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        preload: tuple = (),
        default_scale: Optional[float] = None,
        seed: Optional[int] = None,
        workers: int = 4,
        max_pending: int = 64,
        cache_size: int = 256,
        enrichment_backend: str = "serial",
        arena_dir: Optional[str] = None,
        hooks: Optional[ServerHooks] = None,
        extra_handlers: Optional[dict[str, Callable[[dict[str, Any]], Any]]] = None,
        supervisor_interval: float = 1.0,
    ) -> None:
        self.host = host
        self.port = port
        self.preload = tuple(preload)
        self.default_scale = (
            _default_scale() if default_scale is None else round(float(default_scale), 6)
        )
        self.seed = seed
        self.workers = workers
        self.max_pending = max_pending
        self.cache_size = cache_size
        self.enrichment_backend = enrichment_backend
        #: When set, the server's arena is file-backed under this directory:
        #: exported bundles persist across restarts (a warm restart re-adopts
        #: the previous generation's segments by content digest instead of
        #: rebuilding them).
        self.arena_dir = arena_dir
        self.hooks = hooks or ServerHooks()
        #: Test-only ops (fault injection) executed through admission but
        #: outside the dataset/cache path; ``fn(params) -> payload``.
        self.extra_handlers = dict(extra_handlers or {})
        self.supervisor_interval = float(supervisor_interval)

        self._lock = threading.Lock()
        self._responding = 0
        self._responding_cv = threading.Condition(self._lock)
        self._started = False
        self._stopped = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._supervisor_thread: Optional[threading.Thread] = None
        self._connections: set[socket.socket] = set()
        self._started_at = 0.0

        self.arena: Optional[SharedArena] = None
        self.state = None  # type: ignore[assignment]
        self.cache: Optional[ResultCache] = None
        self.admission: Optional[AdmissionQueue] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReproServer":
        """Bind, warm the preloaded datasets and begin accepting clients."""
        with self._lock:
            if self._started:
                return self
            self._started = True
        self._started_at = time.time()
        # The server owns one arena for its whole lifetime; every executor
        # thread makes it ambient, so process-shm runs share segments.  A
        # file-backed arena additionally survives restarts via its manifest.
        self.arena = SharedArena(content_dedup=True, path=self.arena_dir)
        from .state import ServerState  # deferred: keeps module import light

        self.state = ServerState(
            self.default_scale,
            seed=self.seed,
            enrichment_backend=self.enrichment_backend,
            batch_gate=self.hooks.batch_gate,
            batch_submit=self.hooks.batch_submit,
        )
        self.cache = ResultCache(self.cache_size)
        self.admission = AdmissionQueue(
            max_pending=self.max_pending,
            workers=self.workers,
            worker_wrap=lambda: arena_scope(self.arena),
        )
        self.admission.start()
        for name in self.preload:
            self.state.get(name)
        listener = socket.create_server((self.host, self.port))
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        self._supervisor_thread = threading.Thread(
            target=self._supervisor_loop, name="serve-supervisor", daemon=True
        )
        self._supervisor_thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: drain admitted requests, then release everything.

        Order matters: the listener closes first (no new clients), the
        admission queue drains (every admitted request completes and its
        connection thread writes the response), and only then are the
        batchers stopped, the worker pool shut down, the arena unlinked and
        the remaining client sockets closed.  Idempotent.
        """
        with self._lock:
            if not self._started or self._stopped.is_set():
                self._stopped.set()
                return
            self._stopped.set()
        if self._listener is not None:
            # shutdown() before close(): close() alone does not wake a thread
            # blocked in accept() on Linux, shutdown() does (accept raises).
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - defensive
                pass
        if self._accept_thread is not None:
            self._accept_thread.join()
        if self._supervisor_thread is not None:
            self._supervisor_thread.join()
        if self.admission is not None:
            self.admission.shutdown()
        # Connection threads may still be writing the responses of the drained
        # requests; closing their sockets now would eat those responses.
        with self._responding_cv:
            while self._responding > 0:
                self._responding_cv.wait()
        if self.state is not None:
            self.state.close()
        shutdown_worker_pool()
        if self.arena is not None:
            if self.arena.kind == "file":
                # File-backed segments are the warm-restart state: persist
                # them (close flushes mappings and saves the manifest).
                self.arena.close()
            else:
                self.arena.unlink()
        with self._lock:
            conns = list(self._connections)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`stop` (Ctrl-C stops too)."""
        try:
            self._stopped.wait()
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        self.stop()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started and not self._stopped.is_set()

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _supervisor_loop(self) -> None:
        while not self._stopped.wait(self.supervisor_interval):
            try:
                self.supervise_once()
            except Exception:  # pragma: no cover - the supervisor must survive
                pass

    def supervise_once(self) -> int:
        """One supervision pass: respawn dead admission workers.

        Runs periodically on the supervisor thread (every
        ``supervisor_interval`` seconds); callable directly by tests.
        Returns how many workers were respawned.
        """
        if self.admission is None or self._stopped.is_set():
            return 0
        return self.admission.respawn_dead()

    # ------------------------------------------------------------------
    # socket plumbing
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed → shutdown
            with self._lock:
                if self._stopped.is_set():
                    conn.close()
                    return
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,), name="serve-conn", daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        try:
            while True:
                try:
                    message = read_message(rfile)
                except ProtocolError as err:
                    write_message(wfile, error_response(None, ERROR_BAD_REQUEST, str(err)))
                    continue
                except OSError:
                    return
                if message is None:
                    return  # peer closed cleanly
                req_id = message.get("id") if isinstance(message, dict) else None
                with self._responding_cv:
                    self._responding += 1
                try:
                    try:
                        request = parse_request(message)
                    except ProtocolError as err:
                        write_message(wfile, error_response(req_id, ERROR_BAD_REQUEST, str(err)))
                        continue
                    try:
                        response = self._dispatch(request)
                    except Exception as err:  # noqa: BLE001 — the daemon must survive
                        response = error_response(
                            request.id, ERROR_INTERNAL, f"{type(err).__name__}: {err}"
                        )
                    try:
                        write_message(wfile, response)
                    except OSError:
                        return  # peer went away mid-response
                finally:
                    with self._responding_cv:
                        self._responding -= 1
                        self._responding_cv.notify_all()
        finally:
            with self._lock:
                self._connections.discard(conn)
            for closer in (rfile.close, wfile.close, conn.close):
                try:
                    closer()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, request: Request) -> dict[str, Any]:
        op = request.op
        if op == "ping":
            return ok_response(
                request.id, {"status": "ok", "protocol": PROTOCOL_VERSION, "port": self.port}
            )
        if op == "stats":
            return ok_response(request.id, self.stats())
        if op == "datasets":
            return ok_response(
                request.id, [state.summary() for state in self.state.states()]
            )
        if op == "reload":
            return self._dispatch_reload(request)
        if op == "update":
            return self._dispatch_update(request)
        if op == "shutdown":
            # Respond first; the actual stop runs off-thread because it must
            # not wait on this very connection.
            threading.Thread(target=self.stop, name="serve-stop", daemon=True).start()
            return ok_response(request.id, {"stopping": True})
        if op in self.extra_handlers:
            return self._dispatch_extra(request)
        if op in HANDLERS:
            return self._dispatch_work(request)
        return error_response(
            request.id, ERROR_BAD_REQUEST, f"unknown op {op!r}"
        )

    def _dispatch_reload(self, request: Request) -> dict[str, Any]:
        try:
            normalized = normalize_dataset_params(dict(request.params), self.default_scale)
        except ValueError as err:
            return error_response(request.id, ERROR_BAD_REQUEST, str(err))
        state = self.state.get(normalized["dataset"], normalized["scale"])
        generation = self.state.reload(state, on_drain=self._on_reload_drain)
        invalidated = self.cache.invalidate_dataset(state.key)
        return ok_response(
            request.id,
            {
                "dataset": state.name,
                "scale": state.scale,
                "generation": generation,
                "invalidated": invalidated,
            },
        )

    def _dispatch_update(self, request: Request) -> dict[str, Any]:
        """Absorb a dataset mutation into the warm state (delta, no cold rebuild).

        Like ``reload`` this runs on the connection thread under the drain
        lock, but unlike ``reload`` it does *not* flush the result cache:
        cached entries are tagged with component generation tokens
        (:meth:`DatasetState.cache_token`), so only responses whose inputs
        the update actually dirtied stop hitting.
        """
        try:
            normalized = normalize_update_params(dict(request.params), self.default_scale)
        except ValueError as err:
            return error_response(request.id, ERROR_BAD_REQUEST, str(err))
        state = self.state.get(normalized["dataset"], normalized["scale"])
        spec = UpdateSpec(
            add_samples=normalized["add_samples"],
            add_genes=normalized["add_genes"],
            add_annotations=normalized["add_annotations"],
            add_terms=normalized["add_terms"],
            seed=normalized["seed"],
        )
        report = self.state.update(state, spec, on_drain=self._on_reload_drain)
        return ok_response(
            request.id,
            {
                "dataset": state.name,
                "scale": state.scale,
                "mode": report.mode,
                "dirty": sorted(report.dirty),
                "reused": sorted(report.reused),
                "counts": report.counts,
                "updates": len(state.update_log),
                "generation": state.generation,
                "network_generation": state.network_generation,
                "ontology_generation": state.ontology_generation,
            },
        )

    def _on_reload_drain(self, dataset_key: str) -> None:
        if self.hooks.on_reload_drain is not None:
            self.hooks.on_reload_drain(dataset_key)

    def _dispatch_extra(self, request: Request) -> dict[str, Any]:
        fn = self.extra_handlers[request.op]
        params = dict(request.params)
        try:
            ticket = self.admission.submit(lambda: fn(params))
        except BusyError as err:
            return error_response(request.id, ERROR_BUSY, str(err))
        except ShuttingDownError as err:
            return error_response(request.id, ERROR_SHUTTING_DOWN, str(err))
        if self.hooks.on_enqueued is not None:
            self.hooks.on_enqueued(request.op, "")
        ticket.wait()
        if ticket.error is not None:
            err = ticket.error
            return error_response(request.id, ERROR_INTERNAL, f"{type(err).__name__}: {err}")
        return ok_response(request.id, ticket.value)

    def _dispatch_work(self, request: Request) -> dict[str, Any]:
        try:
            normalized = normalize_params(request.op, dict(request.params), self.default_scale)
        except ValueError as err:
            return error_response(request.id, ERROR_BAD_REQUEST, str(err))
        request_hash = spec_hash(request.op, normalized)
        if self.hooks.on_admit is not None:
            self.hooks.on_admit(request.op, request_hash)
        fault_point("serve.admit", op=request.op, spec_hash=request_hash)
        try:
            ticket = self.admission.submit(
                lambda: self._execute(request.op, normalized, request_hash)
            )
        except BusyError as err:
            return error_response(request.id, ERROR_BUSY, str(err))
        except ShuttingDownError as err:
            return error_response(request.id, ERROR_SHUTTING_DOWN, str(err))
        if self.hooks.on_enqueued is not None:
            self.hooks.on_enqueued(request.op, request_hash)
        ticket.wait()
        if ticket.error is not None:
            err = ticket.error
            return error_response(request.id, ERROR_INTERNAL, f"{type(err).__name__}: {err}")
        payload, cached = ticket.value
        return ok_response(request.id, payload, cached=cached, request_hash=request_hash)

    # ------------------------------------------------------------------
    # execution (runs on admission worker threads)
    # ------------------------------------------------------------------
    def _execute(
        self, op: str, normalized: dict[str, Any], request_hash: str
    ) -> tuple[dict[str, Any], bool]:
        state = self.state.get(normalized["dataset"], normalized["scale"])
        state.acquire()
        try:
            # Component-scoped token: an update that only touched the
            # ontology leaves filter entries valid (and vice versa).
            generation = state.cache_token(op)
            cacheable = op in CACHEABLE_OPS
            if cacheable:
                hit = self.cache.get(request_hash, generation)
                if hit is not None:
                    return hit, True
            if self.hooks.before_execute is not None:
                self.hooks.before_execute(op, request_hash)
            fault_point("serve.execute", op=op, spec_hash=request_hash)
            payload = HANDLERS[op](state, normalized)
            if cacheable:
                self.cache.put(request_hash, state.key, generation, payload)
            return payload, False
        finally:
            state.release()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        cache = self.cache.stats().as_dict() if self.cache is not None else {}
        if self.cache is not None:
            cache["size"] = len(self.cache)
            cache["capacity"] = self.cache.capacity
        enrichment: dict[str, int] = {"batches": 0, "coalesced_requests": 0, "scored_clusters": 0}
        datasets = []
        if self.state is not None:
            for state in self.state.states():
                datasets.append(state.summary())
                for key, value in state.batcher.stats().items():
                    enrichment[key] += value
        arena: dict[str, Any] = {}
        if self.arena is not None:
            arena = {
                "kind": self.arena.kind,
                "path": self.arena.path,
                "segments": self.arena.n_segments,
                "bytes": self.arena.total_bytes,
            }
        return {
            "protocol": PROTOCOL_VERSION,
            "host": self.host,
            "port": self.port,
            "uptime_s": round(time.time() - self._started_at, 3),
            "default_scale": self.default_scale,
            "workers": self.workers,
            "max_pending": self.max_pending,
            "admission": self.admission.stats() if self.admission is not None else {},
            "cache": cache,
            "enrichment": enrichment,
            "supervision": supervision_counters(),
            "comm": comm_counters(),
            "arena": arena,
            "kernels": kernel_tier_info(),
            "datasets": datasets,
        }
