"""Client of the resident service.

A thin synchronous wrapper over the line protocol: connect, send one request
object per call, read its response.  Used by ``repro request``, the serving
benchmark and the test tier.  Error responses surface as :class:`ServeError`
(carrying the protocol error code); a socket-level timeout — e.g. against a
stalled daemon — surfaces as :class:`ServeTimeout` instead of hanging the
caller forever.

Two bounded retry knobs make the client robust against a daemon that is
*about* to be available rather than absent:

* ``connect_retries`` — re-attempt a refused connection with seeded jittered
  backoff, so ``repro request`` issued immediately after ``repro serve &``
  finds the socket once the daemon finishes binding;
* ``max_retries`` — re-issue a request after a transient failure (``busy``
  rejection, timeout, dropped connection), reconnecting first.  Work
  requests are idempotent by construction — the daemon keys them by spec
  hash and the engines are deterministic — so a retried request returns the
  byte-identical payload the lost one would have.

Both default to 0: every existing caller keeps fail-fast semantics unless it
opts in.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Optional

from .protocol import read_message, write_message

__all__ = ["ServeError", "ServeTimeout", "ServeClient"]


class ServeError(RuntimeError):
    """The daemon answered with an error response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServeTimeout(TimeoutError):
    """No response within the client's timeout (stalled or unreachable daemon)."""


#: ServeError codes worth retrying: the daemon is alive but momentarily
#: unable to take the request, or the connection died under it.
_RETRYABLE_CODES = ("busy", "disconnected")


class ServeClient:
    """One connection to a running :class:`~repro.serve.server.ReproServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        connect_retries: int = 0,
        max_retries: int = 0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_retries = max(0, int(connect_retries))
        self.max_retries = max(0, int(max_retries))
        self.backoff_base = float(backoff_base)
        self.backoff_max = float(backoff_max)
        self._rng = random.Random(seed)
        self._next_id = 0
        self._sock: Optional[socket.socket] = None
        self._connect()

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        delay = min(self.backoff_max, self.backoff_base * 2 ** (attempt - 1))
        time.sleep(delay * (0.5 + 0.5 * self._rng.random()))

    def _connect(self) -> None:
        """(Re)open the connection, retrying refused attempts when asked to."""
        self._teardown()
        attempt = 0
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                break
            except OSError:
                if attempt >= self.connect_retries:
                    raise
                attempt += 1
                self._backoff(attempt)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def _teardown(self) -> None:
        if self._sock is None:
            return
        for closer in (self._rfile.close, self._wfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass
        self._sock = None

    # ------------------------------------------------------------------
    def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one request and return the raw response object."""
        self._next_id += 1
        req_id = self._next_id
        try:
            write_message(self._wfile, {"id": req_id, "op": op, "params": params})
            response = read_message(self._rfile)
        except socket.timeout:
            raise ServeTimeout(
                f"no response from {self.host}:{self.port} within {self.timeout}s"
            ) from None
        if response is None:
            raise ServeError("disconnected", "the daemon closed the connection")
        return response

    def result(self, op: str, **params: Any) -> Any:
        """Send one request and return its result, raising on error responses.

        With ``max_retries > 0`` transient failures — a ``busy`` rejection, a
        timeout, a dropped connection — are retried with backoff after
        reconnecting; requests are idempotent (spec-hash keyed, deterministic
        engines), so a retry can only return the same payload.
        """
        attempt = 0
        while True:
            try:
                response = self.request(op, **params)
            except ServeError as exc:
                # request() raises this for a dropped connection only.
                if exc.code != "disconnected" or attempt >= self.max_retries:
                    raise
                attempt += 1
                self._backoff(attempt)
                self._reconnect_quietly()
                continue
            except (ServeTimeout, OSError):
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                self._backoff(attempt)
                self._reconnect_quietly()
                continue
            if response.get("ok"):
                return response["result"]
            error = response.get("error") or {}
            code = error.get("code", "internal")
            if code in _RETRYABLE_CODES and attempt < self.max_retries:
                attempt += 1
                self._backoff(attempt)
                if code == "disconnected":
                    self._reconnect_quietly()
                continue
            raise ServeError(code, error.get("message", "unknown error"))

    def _reconnect_quietly(self) -> None:
        """Best-effort reconnect between retries (the retry re-raises on failure)."""
        try:
            self._connect()
        except OSError:
            pass

    def ping(self) -> dict[str, Any]:
        return self.result("ping")

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
