"""Client of the resident service.

A thin synchronous wrapper over the line protocol: connect, send one request
object per call, read its response.  Used by ``repro request``, the serving
benchmark and the test tier.  Error responses surface as :class:`ServeError`
(carrying the protocol error code); a socket-level timeout — e.g. against a
stalled daemon — surfaces as :class:`ServeTimeout` instead of hanging the
caller forever.
"""

from __future__ import annotations

import socket
from typing import Any, Optional

from .protocol import read_message, write_message

__all__ = ["ServeError", "ServeTimeout", "ServeClient"]


class ServeError(RuntimeError):
    """The daemon answered with an error response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


class ServeTimeout(TimeoutError):
    """No response within the client's timeout (stalled or unreachable daemon)."""


class ServeClient:
    """One connection to a running :class:`~repro.serve.server.ReproServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._next_id = 0

    # ------------------------------------------------------------------
    def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one request and return the raw response object."""
        self._next_id += 1
        req_id = self._next_id
        try:
            write_message(self._wfile, {"id": req_id, "op": op, "params": params})
            response = read_message(self._rfile)
        except socket.timeout:
            raise ServeTimeout(
                f"no response from {self.host}:{self.port} within {self.timeout}s"
            ) from None
        if response is None:
            raise ServeError("disconnected", "the daemon closed the connection")
        return response

    def result(self, op: str, **params: Any) -> Any:
        """Send one request and return its result, raising on error responses."""
        response = self.request(op, **params)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", "internal"), error.get("message", "unknown error")
            )
        return response["result"]

    def ping(self) -> dict[str, Any]:
        return self.result("ping")

    # ------------------------------------------------------------------
    def close(self) -> None:
        for closer in (self._rfile.close, self._wfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
