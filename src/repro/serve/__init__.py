"""Resident warm-state analysis service (``repro serve``).

The cold CLI pays dataset generation, network thresholding, GO-index
construction and cluster discovery on *every* invocation; the serve layer
pays them once.  A :class:`ReproServer` holds prepared dataset bundles (and
the shared-memory arena + worker pool of the parallel backends) resident and
answers ``filter`` / ``classify`` / ``enrich`` requests over a local socket —
admission-bounded, LRU-cached by spec hash and with cross-request enrichment
coalescing.  Responses are byte-identical to a cold ``repro … --json`` run of
the same request; the test tier enforces it.
"""

from .admission import AdmissionQueue, BusyError, ShuttingDownError, Ticket
from .cache import CacheStats, ResultCache
from .client import ServeClient, ServeError, ServeTimeout
from .coalesce import EnrichmentBatcher
from .handlers import CACHEABLE_OPS, HANDLERS, normalize_params
from .protocol import (
    ERROR_BAD_REQUEST,
    ERROR_BUSY,
    ERROR_INTERNAL,
    ERROR_SHUTTING_DOWN,
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    error_response,
    ok_response,
    parse_request,
    read_message,
    request_spec,
    spec_hash,
    write_message,
)
from .server import ReproServer, ServerHooks
from .state import DatasetState, ServerState

__all__ = [
    "AdmissionQueue",
    "BusyError",
    "ShuttingDownError",
    "Ticket",
    "CacheStats",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "ServeTimeout",
    "EnrichmentBatcher",
    "CACHEABLE_OPS",
    "HANDLERS",
    "normalize_params",
    "ERROR_BAD_REQUEST",
    "ERROR_BUSY",
    "ERROR_INTERNAL",
    "ERROR_SHUTTING_DOWN",
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "error_response",
    "ok_response",
    "parse_request",
    "read_message",
    "request_spec",
    "spec_hash",
    "write_message",
    "ReproServer",
    "ServerHooks",
    "DatasetState",
    "ServerState",
]
