"""LRU result cache of the resident service.

Entries are keyed by the request's spec hash (see
:func:`repro.serve.protocol.spec_hash` — the batch engine's hashing reused)
and tagged with the dataset state's *generation*, so invalidation is
two-layered:

* an explicit reload calls :meth:`ResultCache.invalidate_dataset`, dropping
  every entry of that dataset eagerly;
* a lookup whose entry carries a stale generation is dropped lazily — the
  belt to the reload's braces, covering entries written by requests that were
  already in flight while a reload drained.

All operations are thread-safe; counters are exposed for the ``stats`` op.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Counter snapshot of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidated: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidated": self.invalidated,
        }


@dataclass
class _Entry:
    dataset_key: str
    generation: int
    value: Any


class ResultCache:
    """Bounded LRU mapping ``spec hash → (dataset, generation, payload)``."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = CacheStats()

    def get(self, key: str, generation: int) -> Optional[Any]:
        """The cached payload, or ``None`` on a miss.

        An entry whose generation does not match ``generation`` is stale —
        written against a dataset state that has since been reloaded — and is
        dropped, counting as both an invalidation and a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._stats.misses += 1
                return None
            if entry.generation != generation:
                del self._entries[key]
                self._stats.invalidated += 1
                self._stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self._stats.hits += 1
            return entry.value

    def put(self, key: str, dataset_key: str, generation: int, value: Any) -> None:
        """Insert (or refresh) an entry, evicting the least-recently-used over capacity."""
        with self._lock:
            self._entries[key] = _Entry(dataset_key, generation, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    def invalidate_dataset(self, dataset_key: str) -> int:
        """Drop every entry of one dataset state; returns how many were dropped."""
        with self._lock:
            stale = [k for k, e in self._entries.items() if e.dataset_key == dataset_key]
            for k in stale:
                del self._entries[k]
            self._stats.invalidated += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        """A copy of the current counters (plus ``size`` via :meth:`__len__`)."""
        with self._lock:
            return CacheStats(**self._stats.as_dict())
