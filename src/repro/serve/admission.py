"""Request admission: a bounded queue in front of a fixed worker pool.

The service must degrade predictably under load — the partitioned-serving
architectures this layer follows (admission control in front of shared
warm state) reject overload at the door instead of queueing unboundedly.
Concretely:

* at most ``workers`` requests execute concurrently;
* at most ``max_pending`` admitted requests wait in the queue;
* a submission beyond that fails *immediately* with :class:`BusyError` — the
  caller gets a clean ``busy`` response, never a hang;
* :meth:`AdmissionQueue.shutdown` stops admitting, lets every already-admitted
  request finish (the graceful drain), then joins the workers.

Tickets are the completion handles: the connection thread that admitted a
request blocks on its ticket while the worker pool executes it.
"""

from __future__ import annotations

import queue
import threading
from contextlib import nullcontext
from typing import Any, Callable, ContextManager, Optional

from ..faults import fault_point

__all__ = ["BusyError", "ShuttingDownError", "Ticket", "AdmissionQueue"]


class BusyError(RuntimeError):
    """The admission queue is full; the request was rejected, not queued."""


class ShuttingDownError(RuntimeError):
    """The service no longer admits requests (shutdown in progress)."""


class Ticket:
    """Completion handle of one admitted request."""

    def __init__(self, fn: Callable[[], Any]) -> None:
        self._fn = fn
        self._done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None

    def run(self) -> None:
        try:
            self.value = self._fn()
        except BaseException as exc:  # noqa: BLE001 — delivered to the waiter
            self.error = exc
        finally:
            self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the request completed; ``False`` on timeout."""
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()


class AdmissionQueue:
    """Bounded work queue executed by a fixed set of worker threads.

    ``worker_wrap`` optionally supplies a context manager entered for the
    lifetime of each worker thread — the server uses it to make its shared
    arena ambient (:func:`repro.parallel.shm.arena_scope`) inside every
    worker, so ``process-shm`` filter requests export into one arena.
    """

    def __init__(
        self,
        max_pending: int = 64,
        workers: int = 4,
        worker_wrap: Optional[Callable[[], ContextManager[Any]]] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.max_pending = max_pending
        self.workers = workers
        self._worker_wrap = worker_wrap
        self._queue: "queue.Queue[Optional[Ticket]]" = queue.Queue(maxsize=max_pending)
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._closed = False
        self._started = False
        self._in_flight = 0
        self.admitted = 0
        self.rejected = 0
        self.executed = 0
        self.worker_respawns = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            self._threads = [
                threading.Thread(target=self._worker_loop, name=f"serve-worker-{i}", daemon=True)
                for i in range(self.workers)
            ]
        for t in self._threads:
            t.start()

    def shutdown(self) -> None:
        """Stop admitting, drain every admitted request, join the workers.

        Sentinels are enqueued *behind* the pending tickets, so workers finish
        everything that was admitted before exiting — the graceful part.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            started = self._started
        if not started:
            return
        for _ in self._threads:
            # The queue is bounded and may be full of pending tickets; a
            # blocking put preserves FIFO order (sentinel after the drain).
            self._queue.put(None)
        for t in self._threads:
            t.join()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, fn: Callable[[], Any]) -> Ticket:
        """Admit one request; raises instead of blocking when it cannot."""
        with self._lock:
            if self._closed:
                raise ShuttingDownError("the service is shutting down")
            if not self._started:
                raise RuntimeError("AdmissionQueue.submit before start()")
            ticket = Ticket(fn)
            try:
                self._queue.put_nowait(ticket)
            except queue.Full:
                self.rejected += 1
                raise BusyError(
                    f"admission queue full ({self.max_pending} pending)"
                ) from None
            self.admitted += 1
            return ticket

    @property
    def in_flight(self) -> int:
        """Requests currently executing (not counting the queued ones)."""
        with self._lock:
            return self._in_flight

    @property
    def pending(self) -> int:
        """Admitted requests not yet picked up by a worker."""
        return self._queue.qsize()

    @property
    def alive_workers(self) -> int:
        """Worker threads currently alive."""
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())

    def respawn_dead(self) -> int:
        """Replace dead worker threads with fresh ones; returns how many.

        A worker thread can only die abnormally (an exception escaping the
        loop — in practice injected by the fault plane, or a bug).  The
        server's supervisor calls this periodically so a lost worker costs
        one ticket, not a permanent slot of the executor.
        """
        with self._lock:
            if self._closed or not self._started:
                return 0
            dead = [i for i, t in enumerate(self._threads) if not t.is_alive()]
            fresh = []
            for i in dead:
                t = threading.Thread(
                    target=self._worker_loop, name=f"serve-worker-{i}r", daemon=True
                )
                self._threads[i] = t
                fresh.append(t)
            self.worker_respawns += len(fresh)
        for t in fresh:
            t.start()
        return len(fresh)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "executed": self.executed,
                "in_flight": self._in_flight,
                "pending": self._queue.qsize(),
                "workers_alive": sum(1 for t in self._threads if t.is_alive()),
                "worker_respawns": self.worker_respawns,
            }

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        wrap = self._worker_wrap() if self._worker_wrap is not None else nullcontext()
        with wrap:
            while True:
                ticket = self._queue.get()
                if ticket is None:
                    return
                try:
                    fault_point("serve.worker")
                except BaseException as exc:
                    # The injected failure stands in for a crashing worker
                    # thread: fail the picked-up ticket (its waiter gets an
                    # error, not a hang) and let the thread die — the
                    # server's supervisor respawns it.
                    ticket.error = exc
                    ticket._done.set()
                    return
                with self._lock:
                    self._in_flight += 1
                try:
                    ticket.run()
                finally:
                    with self._lock:
                        self._in_flight -= 1
                        self.executed += 1
