"""Request handlers: the service's ops mapped onto the pipeline.

Three work ops mirror the CLI commands one-to-one — the byte-identity promise
(a served response equals a cold ``repro … --json`` run of the same request)
holds because both sides normalise parameters the same way here and serialise
through the canonical payload builders in :mod:`repro.pipeline.workflow`:

``filter``
    one sampling-filter run → :func:`~repro.pipeline.workflow.filter_payload`;
``classify``
    the full downstream analysis (filter + MCODE + enrichment + overlap) →
    :func:`~repro.pipeline.workflow.analysis_payload`;
``enrich``
    AEES scores of the original or a filtered network's clusters, routed
    through the server's cross-request batcher →
    :func:`~repro.pipeline.workflow.enrichment_payload`.

:func:`normalize_params` is the admission-side gate: it fills the CLI's
defaults, validates against the same registries the CLI parsers use and
rejects unknown keys — so the *normalised* parameter set is what gets spec-
hashed, and two spellings of one request share one cache entry.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core.sampling import apply_filter, filter_names
from ..expression.datasets import dataset_names
from ..graph.ordering import get_ordering
from ..parallel.runner import available_backends
from ..pipeline.workflow import (
    analysis_payload,
    analyze_filter,
    cluster_network,
    enrichment_payload,
    filter_payload,
)
from .state import DatasetState

__all__ = [
    "CACHEABLE_OPS",
    "HANDLERS",
    "normalize_params",
    "normalize_dataset_params",
    "normalize_update_params",
]

#: Ops whose responses are pure functions of their normalised params and the
#: dataset generation — exactly these go through the LRU result cache.
CACHEABLE_OPS = frozenset({"filter", "classify", "enrich"})

Handler = Callable[[DatasetState, dict[str, Any]], dict[str, Any]]


# ----------------------------------------------------------------------
# parameter normalisation
# ----------------------------------------------------------------------
def _bad(message: str) -> ValueError:
    return ValueError(message)


def _norm_common(params: dict[str, Any], default_scale: float) -> dict[str, Any]:
    dataset = str(params.get("dataset", "CRE")).upper()
    if dataset not in dataset_names():
        raise _bad(f"unknown dataset {dataset!r}; valid: {dataset_names()}")
    scale = params.get("scale", default_scale)
    try:
        scale = round(float(scale), 6)
    except (TypeError, ValueError):
        raise _bad(f"scale must be a number, got {scale!r}") from None
    if scale <= 0:
        raise _bad(f"scale must be positive, got {scale}")
    return {"dataset": dataset, "scale": scale}


def _norm_filter_spec(params: dict[str, Any]) -> dict[str, Any]:
    method = str(params.get("method", "chordal"))
    if method not in filter_names():
        raise _bad(f"unknown method {method!r}; valid: {filter_names()}")
    # The CLI forces ordering to None for the random walk; mirror it so both
    # spellings of a random-walk request hash identically.
    ordering: Optional[str]
    if method == "random_walk":
        ordering = None
    else:
        ordering = params.get("ordering", "natural")
        if ordering is not None:
            ordering = str(ordering)
            try:
                get_ordering(ordering)
            except KeyError as err:
                raise _bad(err.args[0] if err.args else str(err)) from None
    partitions = params.get("partitions", 1)
    if not isinstance(partitions, int) or isinstance(partitions, bool) or partitions < 1:
        raise _bad(f"partitions must be an integer >= 1, got {partitions!r}")
    partition_method = str(params.get("partition_method", "block"))
    seed = params.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise _bad(f"seed must be an integer, got {seed!r}")
    backend = params.get("backend")
    if backend is not None:
        backend = str(backend)
        if backend not in available_backends():
            raise _bad(f"unknown backend {backend!r}; valid: {available_backends()}")
    return {
        "method": method,
        "ordering": ordering,
        "partitions": partitions,
        "partition_method": partition_method,
        "seed": seed,
        "backend": backend,
    }


def _reject_unknown(op: str, params: dict[str, Any], known: set[str]) -> None:
    unknown = sorted(set(params) - known)
    if unknown:
        raise _bad(f"unknown parameter(s) for {op!r}: {unknown}")


_COMMON_KEYS = {"dataset", "scale"}
_FILTER_KEYS = {"method", "ordering", "partitions", "partition_method", "seed", "backend"}


def normalize_params(
    op: str, params: dict[str, Any], default_scale: float
) -> dict[str, Any]:
    """The canonical parameter set of one work request (what gets spec-hashed).

    Fills the CLI's defaults, validates against the CLI's registries and
    raises :class:`ValueError` (→ a ``bad-request`` response) on anything the
    CLI parser would reject.
    """
    if op == "filter":
        _reject_unknown(op, params, _COMMON_KEYS | _FILTER_KEYS | {"include_edges"})
        normalized = _norm_common(params, default_scale)
        normalized.update(_norm_filter_spec(params))
        include_edges = params.get("include_edges", False)
        if not isinstance(include_edges, bool):
            raise _bad(f"include_edges must be a boolean, got {include_edges!r}")
        normalized["include_edges"] = include_edges
        return normalized
    if op == "classify":
        _reject_unknown(op, params, _COMMON_KEYS | _FILTER_KEYS)
        normalized = _norm_common(params, default_scale)
        normalized.update(_norm_filter_spec(params))
        return normalized
    if op == "enrich":
        source = params.get("source", "original")
        if source not in ("original", "filtered"):
            raise _bad(f"enrich source must be 'original' or 'filtered', got {source!r}")
        if source == "original":
            _reject_unknown(op, params, _COMMON_KEYS | {"source"})
            normalized = _norm_common(params, default_scale)
        else:
            _reject_unknown(op, params, _COMMON_KEYS | _FILTER_KEYS | {"source"})
            normalized = _norm_common(params, default_scale)
            normalized.update(_norm_filter_spec(params))
        normalized["source"] = source
        return normalized
    raise _bad(f"unknown op {op!r}; valid: {sorted(CACHEABLE_OPS)}")


def normalize_dataset_params(
    params: dict[str, Any], default_scale: float
) -> dict[str, Any]:
    """Just the ``dataset``/``scale`` pair, validated (the ``reload`` op)."""
    _reject_unknown("reload", params, _COMMON_KEYS)
    return _norm_common(params, default_scale)


_UPDATE_COUNT_KEYS = ("add_samples", "add_genes", "add_annotations", "add_terms")


def normalize_update_params(
    params: dict[str, Any], default_scale: float
) -> dict[str, Any]:
    """Parameters of the ``update`` op: dataset/scale plus the mutation sizes.

    At least one ``add_*`` count must be positive — a no-op update is a
    request error, not a silent success.
    """
    _reject_unknown("update", params, _COMMON_KEYS | set(_UPDATE_COUNT_KEYS) | {"seed"})
    normalized = _norm_common(params, default_scale)
    total = 0
    for key in _UPDATE_COUNT_KEYS:
        value = params.get(key, 0)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise _bad(f"{key} must be an integer >= 0, got {value!r}")
        normalized[key] = value
        total += value
    if total == 0:
        raise _bad(f"update must request at least one of {list(_UPDATE_COUNT_KEYS)}")
    seed = params.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise _bad(f"seed must be an integer, got {seed!r}")
    normalized["seed"] = seed
    return normalized


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------
def _run_filter(state: DatasetState, params: dict[str, Any]):
    return apply_filter(
        state.bundle.network,
        method=params["method"],
        ordering=params["ordering"],
        n_partitions=params["partitions"],
        partition_method=params["partition_method"],
        seed=params["seed"],
        backend=params["backend"],
    )


def handle_filter(state: DatasetState, params: dict[str, Any]) -> dict[str, Any]:
    result = _run_filter(state, params)
    return filter_payload(result, include_edges=params["include_edges"])


def handle_classify(state: DatasetState, params: dict[str, Any]) -> dict[str, Any]:
    analysis = analyze_filter(
        state.bundle,
        method=params["method"],
        ordering=params["ordering"],
        n_partitions=params["partitions"],
        partition_method=params["partition_method"],
        seed=params["seed"],
        backend=params["backend"],
    )
    return analysis_payload(analysis)


def handle_enrich(state: DatasetState, params: dict[str, Any]) -> dict[str, Any]:
    bundle = state.bundle
    if params["source"] == "original":
        clusters = bundle.original_clusters
        source = f"{bundle.name}/original"
    else:
        result = _run_filter(state, params)
        source = (
            f"{bundle.name}/{params['method']}/"
            f"{params['ordering'] or '-'}/{params['partitions']}P"
        )
        clusters = cluster_network(result.graph, bundle.mcode_params, source=source)
    # The one stage where cross-request batching pays: concurrent enrich
    # requests coalesce into a single scorer pass (see serve.coalesce).
    aees = state.batcher.score([c.subgraph for c in clusters])
    return enrichment_payload(clusters, aees, source)


HANDLERS: dict[str, Handler] = {
    "filter": handle_filter,
    "classify": handle_classify,
    "enrich": handle_enrich,
}
