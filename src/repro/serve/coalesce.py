"""Cross-request coalescing of enrichment work.

Enrichment is the service's one stage where batching across *clients* pays:
the scorer's batched engine resolves all edges of all clusters against the
distinct-term-pair memo table in one concatenated pass
(:meth:`~repro.ontology.enrichment.EnrichmentScorer.score_cluster_graphs`),
and the pair dedup across concurrent clients falls out of ``_PairTable`` —
two requests whose clusters share annotation-term pairs score each distinct
pair once.

:class:`EnrichmentBatcher` is the funnel: requests submit their cluster
subgraphs and block; a single drain thread collects everything pending,
scores it in **one** scorer call and distributes the per-cluster slices back.
Per-cluster results are independent of batch composition (pinned bit-identical
to per-cluster scoring by the enrichment engine's tests), so coalescing never
changes a response — it only removes duplicated passes.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence

from ..graph.graph import Graph

__all__ = ["EnrichmentBatcher"]


class _Pending:
    """One submitted scoring request: its graphs and its completion latch."""

    def __init__(self, graphs: Sequence[Graph]) -> None:
        self.graphs = list(graphs)
        self.event = threading.Event()
        self.values: Optional[list[float]] = None
        self.error: Optional[BaseException] = None


class EnrichmentBatcher:
    """Coalesce concurrent cluster-scoring submissions into single batched passes.

    ``gate`` is a test hook called by the drain loop on every wake-up,
    *before* the pending list is collected — tests block there to force two
    submissions into one deterministic batch (no sleeps).  ``on_submit`` is
    its counterpart on the submission side, called with the pending count
    right after each submission is queued — tests open the gate from there
    once the count they are orchestrating is reached.
    """

    def __init__(
        self,
        scorer,
        gate: Optional[Callable[[], None]] = None,
        on_submit: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._scorer = scorer
        self._gate = gate
        self._on_submit = on_submit
        self._lock = threading.Lock()
        self._pending: list[_Pending] = []
        self._wake = threading.Event()
        self._stop = False
        self.batches = 0
        self.coalesced_requests = 0
        self.scored_clusters = 0
        self._thread = threading.Thread(target=self._loop, name="serve-enrich-batcher", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # submission side
    # ------------------------------------------------------------------
    def submit(self, graphs: Sequence[Graph]) -> _Pending:
        """Queue a scoring request; returns its pending handle."""
        item = _Pending(graphs)
        with self._lock:
            if self._stop:
                raise RuntimeError("EnrichmentBatcher is stopped")
            self._pending.append(item)
            pending = len(self._pending)
        self._wake.set()
        if self._on_submit is not None:
            self._on_submit(pending)
        return item

    def score(self, graphs: Sequence[Graph], timeout: Optional[float] = None) -> list[float]:
        """Submit and block until scored; the AEES of every graph, in order."""
        item = self.submit(graphs)
        if not item.event.wait(timeout):
            raise TimeoutError("enrichment batch did not complete in time")
        if item.error is not None:
            raise item.error
        assert item.values is not None
        return item.values

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "batches": self.batches,
                "coalesced_requests": self.coalesced_requests,
                "scored_clusters": self.scored_clusters,
            }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Drain what is pending and join the batcher thread (idempotent)."""
        with self._lock:
            if self._stop:
                self._thread.join()
                return
            self._stop = True
        self._wake.set()
        self._thread.join()

    # ------------------------------------------------------------------
    # drain loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            self._wake.wait()
            if self._gate is not None:
                self._gate()
            with self._lock:
                batch = self._pending
                self._pending = []
                self._wake.clear()
                stopping = self._stop
            if batch:
                self._run_batch(batch)
            if stopping:
                return

    def _run_batch(self, batch: list[_Pending]) -> None:
        graphs = [g for item in batch for g in item.graphs]
        try:
            values = self._scorer.cluster_aees(graphs)
        except BaseException as exc:  # noqa: BLE001 — delivered to every waiter
            for item in batch:
                item.error = exc
                item.event.set()
            return
        with self._lock:
            self.batches += 1
            self.coalesced_requests += len(batch)
            self.scored_clusters += len(graphs)
        offset = 0
        for item in batch:
            item.values = list(values[offset : offset + len(item.graphs)])
            offset += len(item.graphs)
            item.event.set()
