"""Wire protocol of the resident analysis service.

Newline-delimited JSON over a local stream socket: one request object per
line, one response object per line, in order.  The framing is deliberately
trivial — the service is a warm-state cache in front of the batched engines,
not a transport project — but the *spec* of a request is rigorous, because it
doubles as the result-cache key:

* :func:`request_spec` reduces ``(op, params)`` to a canonical JSON
  structure (normalised parameters, sorted keys);
* :func:`spec_hash` hashes it with the batch engine's
  :func:`~repro.pipeline.batch.canonical_hash`, so one request names the same
  work whether it arrives over the socket, through ``repro batch`` or from a
  test.

Requests::

    {"id": 7, "op": "classify", "params": {"dataset": "CRE", ...}}

Responses::

    {"id": 7, "ok": true, "result": {...}, "cached": false, "spec_hash": "…"}
    {"id": 7, "ok": false, "error": {"code": "busy", "message": "…"}}
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, BinaryIO, Optional

from ..pipeline.batch import canonical_hash

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_MESSAGE_BYTES",
    "ERROR_BAD_REQUEST",
    "ERROR_BUSY",
    "ERROR_SHUTTING_DOWN",
    "ERROR_INTERNAL",
    "ProtocolError",
    "Request",
    "parse_request",
    "request_spec",
    "spec_hash",
    "ok_response",
    "error_response",
    "write_message",
    "read_message",
]

PROTOCOL_VERSION = 1

#: Hard cap on one framed message; a peer that exceeds it is malformed, not
#: merely large (the biggest legitimate payload — a full edge list — is MBs).
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

ERROR_BAD_REQUEST = "bad-request"
ERROR_BUSY = "busy"
ERROR_SHUTTING_DOWN = "shutting-down"
ERROR_INTERNAL = "internal"


class ProtocolError(ValueError):
    """A message that does not parse as one request/response line."""


@dataclass(frozen=True)
class Request:
    """One parsed request: client-chosen id, operation name, parameters."""

    id: Any
    op: str
    params: dict[str, Any]


def parse_request(message: Any) -> Request:
    """Validate a decoded message object as a request; raises :class:`ProtocolError`."""
    if not isinstance(message, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(message).__name__}")
    req_id = message.get("id")
    if not (req_id is None or isinstance(req_id, (int, str))):
        raise ProtocolError("request id must be an integer, string or null")
    op = message.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("request must name a non-empty 'op' string")
    params = message.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("request 'params' must be a JSON object")
    return Request(id=req_id, op=op, params=params)


def request_spec(op: str, params: dict[str, Any]) -> dict[str, Any]:
    """Canonical (hashable) form of one request: the op plus sorted params."""
    return {"op": op, "params": {k: params[k] for k in sorted(params)}}


def spec_hash(op: str, params: dict[str, Any]) -> str:
    """The request's cache key — the batch engine's spec hashing, reused."""
    return canonical_hash(request_spec(op, params))


def ok_response(
    req_id: Any,
    result: Any,
    cached: Optional[bool] = None,
    request_hash: Optional[str] = None,
) -> dict[str, Any]:
    response: dict[str, Any] = {"id": req_id, "ok": True, "result": result}
    if cached is not None:
        response["cached"] = cached
    if request_hash is not None:
        response["spec_hash"] = request_hash
    return response


def error_response(req_id: Any, code: str, message: str) -> dict[str, Any]:
    return {"id": req_id, "ok": False, "error": {"code": code, "message": message}}


def write_message(stream: BinaryIO, message: Any) -> None:
    """Frame and send one message (object → one JSON line)."""
    blob = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(blob) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(blob)} bytes exceeds {MAX_MESSAGE_BYTES}")
    stream.write(blob + b"\n")
    stream.flush()


def read_message(stream: BinaryIO) -> Optional[Any]:
    """Read one framed message; ``None`` on a cleanly closed peer.

    Raises :class:`ProtocolError` on an oversized or non-JSON line and
    propagates ``OSError``/``socket.timeout`` from the underlying socket.
    """
    line = stream.readline(MAX_MESSAGE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError("incoming message exceeds the frame size cap")
    try:
        return json.loads(line)
    except ValueError as err:
        raise ProtocolError(f"undecodable message: {err}") from None
