"""Warm state of the resident service.

One :class:`DatasetState` per ``(dataset, scale)`` holds everything the CLI
rebuilds from cold on every invocation: the prepared
:class:`~repro.pipeline.workflow.DatasetBundle` (expression study, label +
CSR network views, GO DAG with its interned term index, annotation index,
enrichment scorer with its pair-table memo, original clusters) plus the
service-side machinery — a drain lock for reload, a generation counter for
cache invalidation and the enrichment batcher.

Reload discipline: requests hold a *shared* claim on the state while they
execute; ``begin_reload`` blocks new claims, waits for the active ones to
drain, and only then is the bundle swapped and the generation bumped — an
in-flight request never observes a half-swapped state.

The bundle's scorer is wrapped in :class:`_LockedScorer`: worker threads run
requests concurrently, but the scorer's pair-table memo is a mutable shared
structure, so every scorer call is serialised per dataset.  (Scores are
bit-identical either way; the lock only removes the data race.)
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from collections.abc import Sequence

from ..faults import fault_point
from ..incremental import (
    UpdateReport,
    UpdateSpec,
    apply_update,
    reference_apply_update,
    synthesize_update,
)
from ..pipeline.workflow import DatasetBundle, prepare_dataset
from .coalesce import EnrichmentBatcher

__all__ = ["DatasetState", "ServerState"]


class _LockedScorer:
    """Thread-safe proxy around one :class:`EnrichmentScorer`.

    Every callable attribute is executed under one re-entrant lock; plain
    attributes pass through.  The underlying scorer computes exactly what it
    would unlocked, so results are unchanged — only concurrent mutation of
    the pair-table memo is excluded.
    """

    def __init__(self, scorer: Any) -> None:
        self._scorer = scorer
        self._lock = threading.RLock()

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._scorer, name)
        if not callable(attr):
            return attr
        lock = self._lock

        def locked(*args: Any, **kwargs: Any) -> Any:
            with lock:
                return attr(*args, **kwargs)

        locked.__name__ = getattr(attr, "__name__", name)
        return locked


def dataset_key(name: str, scale: float) -> str:
    """Stable identifier of one warm dataset state (cache tagging, stats)."""
    return f"{name.upper()}@{round(float(scale), 6)}"


class DatasetState:
    """One warm ``(dataset, scale)`` slot: bundle + generation + drain lock."""

    def __init__(
        self,
        name: str,
        scale: float,
        bundle: DatasetBundle,
        batch_gate: Optional[Callable[[], None]] = None,
        batch_submit: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.name = name.upper()
        self.scale = round(float(scale), 6)
        self.bundle = bundle
        self.generation = 0
        #: Component generations for scoped cache invalidation: an absorbed
        #: update bumps only the tags of the components it dirtied, so cached
        #: responses that cannot have changed keep hitting (e.g. ``filter``
        #: entries survive an annotation-only update).
        self.network_generation = 0
        self.ontology_generation = 0
        #: Spec log of every update absorbed since the cold build (oldest
        #: first) — the replay recipe a full rebuild needs to reach the same
        #: logical dataset (see :mod:`repro.incremental`).
        self.update_log: list[UpdateSpec] = []
        self.created = time.time()
        #: ``"healthy"`` | ``"degraded"`` — a failed reload degrades the
        #: state (the previous bundle keeps serving) instead of killing it.
        self.health = "healthy"
        self.degraded_reason: Optional[str] = None
        self._batch_gate = batch_gate
        self._batch_submit = batch_submit
        self.batcher = EnrichmentBatcher(bundle.scorer, gate=batch_gate, on_submit=batch_submit)
        self._cond = threading.Condition()
        self._active = 0
        self._reloading = False

    @property
    def key(self) -> str:
        return dataset_key(self.name, self.scale)

    # ------------------------------------------------------------------
    # shared claims (request execution)
    # ------------------------------------------------------------------
    def acquire(self) -> None:
        """Take a shared claim; blocks while a reload is swapping state."""
        with self._cond:
            while self._reloading:
                self._cond.wait()
            self._active += 1

    def release(self) -> None:
        with self._cond:
            self._active -= 1
            if self._active < 0:  # pragma: no cover - defensive
                raise RuntimeError("DatasetState.release without acquire")
            self._cond.notify_all()

    @property
    def active(self) -> int:
        with self._cond:
            return self._active

    # ------------------------------------------------------------------
    # exclusive claim (reload)
    # ------------------------------------------------------------------
    def begin_reload(self, on_drain: Optional[Callable[[str], None]] = None) -> None:
        """Block new claims, then wait for in-flight requests to drain.

        ``on_drain`` (a non-blocking observer hook) fires once if the reload
        actually had to wait for active requests.
        """
        with self._cond:
            while self._reloading:
                self._cond.wait()
            self._reloading = True
            draining = self._active > 0
        if draining and on_drain is not None:
            on_drain(self.key)
        with self._cond:
            while self._active > 0:
                self._cond.wait()

    def end_reload(self) -> None:
        with self._cond:
            self._reloading = False
            self._cond.notify_all()

    def mark_degraded(self, reason: str) -> None:
        self.health = "degraded"
        self.degraded_reason = reason

    def mark_healthy(self) -> None:
        self.health = "healthy"
        self.degraded_reason = None

    def cache_token(self, op: str) -> tuple:
        """The generation tag a cached ``op`` response is valid under.

        ``filter`` responses depend only on the network view, so they stay
        valid across ontology/annotation updates; ``classify``/``enrich``
        responses additionally read the ontology state.  Reloads bump the
        base generation, invalidating everything.
        """
        if op == "filter":
            return (self.generation, self.network_generation)
        return (self.generation, self.network_generation, self.ontology_generation)

    def summary(self) -> dict[str, Any]:
        out = {
            "dataset": self.name,
            "scale": self.scale,
            "generation": self.generation,
            "network_generation": self.network_generation,
            "ontology_generation": self.ontology_generation,
            "updates": len(self.update_log),
            "n_vertices": self.bundle.n_vertices,
            "n_edges": self.bundle.n_edges,
            "original_clusters": len(self.bundle.original_clusters),
            "active_requests": self.active,
            "health": self.health,
        }
        if self.degraded_reason is not None:
            out["degraded_reason"] = self.degraded_reason
        return out


class ServerState:
    """All warm dataset states of one server, built lazily and reloadable."""

    def __init__(
        self,
        default_scale: float,
        seed: Optional[int] = None,
        enrichment_backend: str = "serial",
        batch_gate: Optional[Callable[[], None]] = None,
        batch_submit: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.default_scale = round(float(default_scale), 6)
        self.seed = seed
        self.enrichment_backend = enrichment_backend
        self.batch_gate = batch_gate
        self.batch_submit = batch_submit
        self._states: dict[str, DatasetState] = {}
        self._lock = threading.Lock()
        self._build_lock = threading.Lock()

    def _build_bundle(
        self, name: str, scale: float, update_log: Sequence[UpdateSpec] = ()
    ) -> DatasetBundle:
        fault_point("serve.rebuild", dataset=name, scale=scale)
        bundle = prepare_dataset(
            name, scale=scale, seed=self.seed, enrichment_backend=self.enrichment_backend
        )
        # A rebuild of a mutated dataset must reach the same logical state the
        # warm bundle is in: replay the absorbed update log through the cold
        # reference path (synthesize_update is deterministic given the
        # pre-update state, so the replayed data matches bit for bit).
        for spec in update_log:
            bundle = reference_apply_update(bundle, synthesize_update(bundle, spec))
        # Requests execute on concurrent worker threads; the scorer's memo
        # tables must not race (see _LockedScorer).
        bundle.scorer = _LockedScorer(bundle.scorer)
        return bundle

    def get(self, name: str, scale: Optional[float] = None) -> DatasetState:
        """The warm state for ``(name, scale)``, building it on first use."""
        scale = self.default_scale if scale is None else round(float(scale), 6)
        key = dataset_key(name, scale)
        with self._lock:
            state = self._states.get(key)
        if state is not None:
            return state
        # One bundle builds at a time: concurrent first requests for the same
        # dataset must not both pay the build (or race the install).
        with self._build_lock:
            with self._lock:
                state = self._states.get(key)
            if state is not None:
                return state
            state = DatasetState(
                name,
                scale,
                self._build_bundle(name, scale),
                batch_gate=self.batch_gate,
                batch_submit=self.batch_submit,
            )
            with self._lock:
                self._states[key] = state
            return state

    def reload(
        self, state: DatasetState, on_drain: Optional[Callable[[str], None]] = None
    ) -> int:
        """Drain, rebuild and swap one dataset state; returns the new generation.

        The new bundle is built *before* anything of the old state is torn
        down: a failed rebuild marks the state degraded and re-raises, while
        the previous bundle (and its still-running batcher) keeps serving —
        a reload can fail, but it can never strand the dataset.
        """
        state.begin_reload(on_drain)
        try:
            try:
                bundle = self._build_bundle(
                    state.name, state.scale, update_log=tuple(state.update_log)
                )
            except Exception as exc:
                state.mark_degraded(f"reload failed: {type(exc).__name__}: {exc}")
                raise
            state.batcher.stop()
            state.bundle = bundle
            state.batcher = EnrichmentBatcher(
                bundle.scorer, gate=state._batch_gate, on_submit=state._batch_submit
            )
            state.generation += 1
            state.mark_healthy()
            return state.generation
        finally:
            state.end_reload()

    def update(
        self,
        state: DatasetState,
        spec: UpdateSpec,
        on_drain: Optional[Callable[[str], None]] = None,
    ) -> UpdateReport:
        """Absorb one dataset mutation into a warm state without a cold rebuild.

        The delta path runs under the same drain discipline as ``reload`` (no
        request observes a half-updated bundle) but keeps the scorer, batcher
        and every untouched component alive.  Only the generation tags of the
        components the update dirtied are bumped, so cached responses that
        cannot have changed keep hitting.

        If the delta path fails (including an injected ``serve.update`` or
        ``incremental.delta`` fault), the update degrades to a full reference
        rebuild that replays the whole update log plus this spec — same
        logical state, cold machinery.  Only when that replay *also* fails is
        the state marked degraded (the previous bundle keeps serving).
        """
        state.begin_reload(on_drain)
        try:
            try:
                fault_point("serve.update", dataset=state.name, scale=state.scale)
                # fallback=False: the serve layer owns the fallback so it can
                # also swap in a fresh scorer/batcher pair.
                bundle, report = apply_update(
                    state.bundle, spec, history=state.update_log, fallback=False
                )
            except Exception:
                try:
                    bundle = self._build_bundle(
                        state.name,
                        state.scale,
                        update_log=tuple(state.update_log) + (spec,),
                    )
                except Exception as exc:
                    state.mark_degraded(f"update failed: {type(exc).__name__}: {exc}")
                    raise
                # Full rebuild: new scorer, so the batcher must be restarted
                # and every component generation conservatively bumped.
                state.batcher.stop()
                state.bundle = bundle
                state.batcher = EnrichmentBatcher(
                    bundle.scorer, gate=state._batch_gate, on_submit=state._batch_submit
                )
                state.update_log.append(spec)
                state.network_generation += 1
                state.ontology_generation += 1
                state.mark_healthy()
                return UpdateReport(
                    mode="rebuild",
                    dirty=frozenset(
                        {"expression", "network", "ontology", "annotations"}
                    ),
                    reused=(),
                    counts=spec.counts(),
                )
            # Delta path: the returned bundle shares the (locked) scorer and
            # the untouched views with the old one — the batcher keeps its
            # scorer reference, so no restart.
            state.bundle = bundle
            state.update_log.append(spec)
            if report.dirty & {"expression", "network"}:
                state.network_generation += 1
            if report.dirty & {"ontology", "annotations"}:
                state.ontology_generation += 1
            state.mark_healthy()
            return report
        finally:
            state.end_reload()

    def states(self) -> list[DatasetState]:
        with self._lock:
            return list(self._states.values())

    def close(self) -> None:
        """Stop the per-state batcher threads (bundles are plain memory)."""
        for state in self.states():
            state.batcher.stop()
