"""Gene → GO-term annotation tables.

The enrichment scorer needs, for every gene, the set of ontology terms it is
annotated with.  :class:`AnnotationTable` stores that mapping, validates the
terms against a :class:`~repro.ontology.go_dag.GODag` and offers the couple of
queries the pipeline uses (terms of a gene, annotated-gene test, per-term gene
lists for enrichment summaries).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Optional

import numpy as np

from .go_dag import GODag, TermIndex

__all__ = ["AnnotationTable", "AnnotationIndex"]


class AnnotationIndex:
    """A CSR view of an :class:`AnnotationTable` over interned term ids.

    ``term_ids[indptr[g]:indptr[g+1]]`` is gene row ``g``'s annotation terms
    as **pre-sorted ascending** interned ids.  Interned ids are assigned in
    sorted term-string order (see :class:`~repro.ontology.go_dag.TermIndex`),
    so a row read left to right is exactly the ``sorted(terms_of(gene))``
    iteration of the scalar scorer — the batched engine inherits its
    candidate-pair order without any per-edge ``sorted()`` call.

    Rows exist only for annotated genes; :meth:`rows_for` maps arbitrary
    labels, returning ``-1`` for anything without annotations.
    """

    __slots__ = ("term_index", "genes", "indptr", "term_ids", "_row_of")

    def __init__(self, table: "AnnotationTable", term_index: TermIndex) -> None:
        self.term_index = term_index
        self.genes: tuple[str, ...] = tuple(table._gene_terms)
        self._row_of: dict[str, int] = {g: i for i, g in enumerate(self.genes)}
        id_of = term_index.id_of
        rows = [
            np.sort(np.fromiter((id_of[t] for t in table._gene_terms[g]), dtype=np.int64))
            for g in self.genes
        ]
        counts = np.array([r.shape[0] for r in rows], dtype=np.int64)
        self.indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])
        self.term_ids = (
            np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        )
        self.indptr.setflags(write=False)
        self.term_ids.setflags(write=False)

    @property
    def n_genes(self) -> int:
        return len(self.genes)

    @classmethod
    def updated(
        cls,
        old: "AnnotationIndex",
        table: "AnnotationTable",
        term_index: TermIndex,
        old_to_new: Optional[np.ndarray] = None,
        touched: Iterable[str] = (),
    ) -> "AnnotationIndex":
        """Delta-rebuild an index after annotations/terms were appended.

        ``old`` must be a prior index of ``table``; ``touched`` names the
        genes whose annotation sets changed since (new genes included).
        Untouched rows are reused from the old CSR — remapped through the
        strictly-increasing ``old_to_new`` gather when the term space was
        extended (monotone, so sorted rows stay sorted) — and only touched
        rows are re-interned and re-sorted.  Bit-identical to a cold
        ``AnnotationIndex(table, term_index)``.
        """
        index = object.__new__(cls)
        index.term_index = term_index
        index.genes = tuple(table._gene_terms)
        index._row_of = {g: i for i, g in enumerate(index.genes)}
        touched = set(touched)
        id_of = term_index.id_of
        remapped = old.term_ids if old_to_new is None else old_to_new[old.term_ids]
        rows = []
        for g in index.genes:
            r = old._row_of.get(g, -1)
            if r < 0 or g in touched:
                rows.append(
                    np.sort(
                        np.fromiter((id_of[t] for t in table._gene_terms[g]), dtype=np.int64)
                    )
                )
            else:
                rows.append(remapped[old.indptr[r] : old.indptr[r + 1]])
        counts = np.array([r.shape[0] for r in rows], dtype=np.int64)
        index.indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=index.indptr[1:])
        index.term_ids = np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        index.indptr.setflags(write=False)
        index.term_ids.setflags(write=False)
        return index

    def row_of(self, gene: Hashable) -> int:
        """Gene row of one label (``str()``-normalised), ``-1`` when unannotated."""
        return self._row_of.get(str(gene), -1)

    def rows_for(self, genes: Iterable[Hashable]) -> np.ndarray:
        """Map labels to gene rows (``-1`` for unannotated) in one pass."""
        get = self._row_of.get
        return np.fromiter((get(str(g), -1) for g in genes), dtype=np.int64)

    def terms_of_row(self, row: int) -> np.ndarray:
        """The sorted interned term ids of gene row ``row``."""
        return self.term_ids[self.indptr[row] : self.indptr[row + 1]]


class AnnotationTable:
    """A mapping from gene identifiers to sets of GO term ids.

    Parameters
    ----------
    dag:
        The ontology the term ids must belong to.  Annotations naming unknown
        terms raise ``KeyError`` at insertion time, so a table is always
        consistent with its DAG.
    annotations:
        Optional initial mapping ``gene -> iterable of term ids``.
    """

    def __init__(
        self,
        dag: GODag,
        annotations: Optional[Mapping[str, Iterable[str]]] = None,
    ) -> None:
        self.dag = dag
        self._gene_terms: dict[str, set[str]] = {}
        self._term_genes: dict[str, set[str]] = {}
        self._index: Optional[AnnotationIndex] = None
        if annotations:
            for gene, terms in annotations.items():
                self.annotate(gene, terms)

    # ------------------------------------------------------------------
    def annotate(self, gene: str, terms: Iterable[str]) -> None:
        """Add term annotations to ``gene`` (terms must exist in the DAG)."""
        term_list = list(terms)
        for t in term_list:
            if t not in self.dag:
                raise KeyError(f"annotation of {gene!r} names unknown GO term {t!r}")
        bucket = self._gene_terms.setdefault(gene, set())
        for t in term_list:
            bucket.add(t)
            self._term_genes.setdefault(t, set()).add(gene)
        self._index = None

    def indexed(self) -> AnnotationIndex:
        """Return the CSR :class:`AnnotationIndex` of this table (cached).

        The index is pinned to the DAG's current
        :meth:`~repro.ontology.go_dag.GODag.term_index` snapshot and rebuilt
        whenever either side moved — new annotations drop it eagerly, DAG
        mutations are detected by snapshot identity.
        """
        term_index = self.dag.term_index()
        index = self._index
        if index is None or index.term_index is not term_index:
            index = AnnotationIndex(self, term_index)
            self._index = index
        return index

    def terms_of(self, gene: str) -> set[str]:
        """Return the terms annotated to ``gene`` (empty set when unannotated)."""
        return set(self._gene_terms.get(gene, set()))

    def genes_of(self, term: str) -> set[str]:
        """Return the genes annotated with ``term`` (directly, not via descendants)."""
        return set(self._term_genes.get(term, set()))

    def genes_of_subtree(self, term: str) -> set[str]:
        """Return genes annotated with ``term`` or any of its descendants."""
        out: set[str] = set()
        for t in self.dag.subtree(term):
            out |= self._term_genes.get(t, set())
        return out

    def is_annotated(self, gene: str) -> bool:
        return bool(self._gene_terms.get(gene))

    def genes(self) -> list[str]:
        """Return every annotated gene (insertion order)."""
        return list(self._gene_terms)

    def n_annotations(self) -> int:
        """Return the total number of (gene, term) pairs."""
        return sum(len(v) for v in self._gene_terms.values())

    def coverage(self, genes: Iterable[str]) -> float:
        """Return the fraction of ``genes`` that carry at least one annotation."""
        genes = list(genes)
        if not genes:
            return 0.0
        return sum(1 for g in genes if self.is_annotated(g)) / len(genes)

    def merged_with(self, other: "AnnotationTable") -> "AnnotationTable":
        """Return a new table containing the union of both tables' annotations."""
        if other.dag is not self.dag:
            raise ValueError("both tables must reference the same GODag instance")
        merged = AnnotationTable(self.dag)
        for gene in self.genes():
            merged.annotate(gene, self.terms_of(gene))
        for gene in other.genes():
            merged.annotate(gene, other.terms_of(gene))
        return merged

    def __len__(self) -> int:
        return len(self._gene_terms)

    def __contains__(self, gene: str) -> bool:
        return gene in self._gene_terms
