"""Gene → GO-term annotation tables.

The enrichment scorer needs, for every gene, the set of ontology terms it is
annotated with.  :class:`AnnotationTable` stores that mapping, validates the
terms against a :class:`~repro.ontology.go_dag.GODag` and offers the couple of
queries the pipeline uses (terms of a gene, annotated-gene test, per-term gene
lists for enrichment summaries).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import Optional

from .go_dag import GODag

__all__ = ["AnnotationTable"]


class AnnotationTable:
    """A mapping from gene identifiers to sets of GO term ids.

    Parameters
    ----------
    dag:
        The ontology the term ids must belong to.  Annotations naming unknown
        terms raise ``KeyError`` at insertion time, so a table is always
        consistent with its DAG.
    annotations:
        Optional initial mapping ``gene -> iterable of term ids``.
    """

    def __init__(
        self,
        dag: GODag,
        annotations: Optional[Mapping[str, Iterable[str]]] = None,
    ) -> None:
        self.dag = dag
        self._gene_terms: dict[str, set[str]] = {}
        self._term_genes: dict[str, set[str]] = {}
        if annotations:
            for gene, terms in annotations.items():
                self.annotate(gene, terms)

    # ------------------------------------------------------------------
    def annotate(self, gene: str, terms: Iterable[str]) -> None:
        """Add term annotations to ``gene`` (terms must exist in the DAG)."""
        term_list = list(terms)
        for t in term_list:
            if t not in self.dag:
                raise KeyError(f"annotation of {gene!r} names unknown GO term {t!r}")
        bucket = self._gene_terms.setdefault(gene, set())
        for t in term_list:
            bucket.add(t)
            self._term_genes.setdefault(t, set()).add(gene)

    def terms_of(self, gene: str) -> set[str]:
        """Return the terms annotated to ``gene`` (empty set when unannotated)."""
        return set(self._gene_terms.get(gene, set()))

    def genes_of(self, term: str) -> set[str]:
        """Return the genes annotated with ``term`` (directly, not via descendants)."""
        return set(self._term_genes.get(term, set()))

    def genes_of_subtree(self, term: str) -> set[str]:
        """Return genes annotated with ``term`` or any of its descendants."""
        out: set[str] = set()
        for t in self.dag.subtree(term):
            out |= self._term_genes.get(t, set())
        return out

    def is_annotated(self, gene: str) -> bool:
        return bool(self._gene_terms.get(gene))

    def genes(self) -> list[str]:
        """Return every annotated gene (insertion order)."""
        return list(self._gene_terms)

    def n_annotations(self) -> int:
        """Return the total number of (gene, term) pairs."""
        return sum(len(v) for v in self._gene_terms.values())

    def coverage(self, genes: Iterable[str]) -> float:
        """Return the fraction of ``genes`` that carry at least one annotation."""
        genes = list(genes)
        if not genes:
            return 0.0
        return sum(1 for g in genes if self.is_annotated(g)) / len(genes)

    def merged_with(self, other: "AnnotationTable") -> "AnnotationTable":
        """Return a new table containing the union of both tables' annotations."""
        if other.dag is not self.dag:
            raise ValueError("both tables must reference the same GODag instance")
        merged = AnnotationTable(self.dag)
        for gene in self.genes():
            merged.annotate(gene, self.terms_of(gene))
        for gene in other.genes():
            merged.annotate(gene, other.terms_of(gene))
        return merged

    def __len__(self) -> int:
        return len(self._gene_terms)

    def __contains__(self, gene: str) -> bool:
        return gene in self._gene_terms
