"""Synthetic Gene-Ontology generation tied to a study's ground truth.

The real pipeline annotates genes with curated GO terms (MGI / NCBI).  Offline
we generate (a) a GO-like DAG with realistic depth and branching and (b) an
annotation table in which

* genes of a planted co-expression module share a *deep, specific* term (plus
  occasionally one of its children), so module edges have a deep DCP and small
  term breadth — a high enrichment score;
* noise-clump, chain and background genes receive terms scattered across the
  DAG, so their pairwise DCP is shallow (often the root) and the enrichment
  score is low or negative;
* a configurable fraction of module genes is left unannotated or annotated
  with generic shallow terms, controlled by the study's ``biological_signal``
  — which is how the weaker YNG/MID enrichment of the paper is reproduced.

This mirrors the property the paper's evaluation relies on: the enrichment
score separates "real" clusters from coincidental ones.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..expression.datasets import SyntheticStudy
from .annotation import AnnotationTable
from .go_dag import GODag

__all__ = ["make_go_dag", "annotate_study", "make_study_ontology"]


def make_go_dag(
    depth: int = 8,
    branching: int = 3,
    extra_parent_fraction: float = 0.08,
    seed: int = 0,
    root_name: str = "biological_process",
) -> GODag:
    """Generate a GO-like rooted DAG.

    The DAG is a balanced tree of the given ``depth`` and ``branching`` with a
    small fraction of additional cross-parent links (GO terms frequently have
    more than one parent), added only from deeper to strictly shallower levels
    so the structure stays acyclic.
    """
    if depth < 2:
        raise ValueError("depth must be at least 2")
    if branching < 2:
        raise ValueError("branching must be at least 2")
    rng = np.random.default_rng(seed)
    dag = GODag(root_name=root_name)
    levels: list[list[str]] = [[dag.root_id]]
    counter = 0
    for level in range(1, depth + 1):
        current: list[str] = []
        for parent in levels[level - 1]:
            for _ in range(branching):
                counter += 1
                term_id = f"GO:{counter:07d}"
                dag.add_term(term_id, [parent], name=f"process_L{level}_{counter}")
                current.append(term_id)
        levels.append(current)
        # Keep the DAG from exploding exponentially: cap each level's width.
        if len(current) > 600:
            levels[level] = list(rng.choice(current, size=600, replace=False))
    # extra parents (cross links) from level >= 2 terms to terms one level up
    all_terms = [t for lvl in levels[1:] for t in lvl]
    n_extra = int(extra_parent_fraction * len(all_terms))
    for _ in range(n_extra):
        term = all_terms[int(rng.integers(0, len(all_terms)))]
        term_depth = dag.depth(term)
        if term_depth < 2:
            continue
        candidates = levels[term_depth - 1]
        new_parent = candidates[int(rng.integers(0, len(candidates)))]
        if new_parent != term and term not in dag.ancestors(new_parent):
            dag.add_parent(term, new_parent)
    return dag


def _deep_terms(dag: GODag, min_depth: int) -> list[str]:
    """Terms at depth >= min_depth, in deterministic order."""
    return [t for t in dag.terms() if dag.depth(t) >= min_depth]


def _shallow_terms(dag: GODag, max_depth: int) -> list[str]:
    """Non-root terms at depth <= max_depth, in deterministic order."""
    return [t for t in dag.terms() if 0 < dag.depth(t) <= max_depth]


def annotate_study(
    study: SyntheticStudy,
    dag: GODag,
    seed: Optional[int] = None,
    module_term_min_depth: Optional[int] = None,
    background_terms_per_gene: int = 3,
) -> AnnotationTable:
    """Build the annotation table for a synthetic study.

    Module genes are annotated with a module-specific deep term (or one of its
    children) with probability ``study.config.biological_signal``; the
    remaining ("weakly annotated") module genes receive only a shallow ancestor
    of the module term — the curated-annotation analogue of a gene whose
    function is known only at a coarse level, which is how the weaker
    enrichment of the paper's pre-filtered YNG/MID datasets arises.  All other
    genes in the study receive ``background_terms_per_gene`` terms drawn
    uniformly from the whole DAG, so coincidental clusters score low.
    """
    rng = np.random.default_rng(study.seed * 7919 + 13 if seed is None else seed)
    min_depth = module_term_min_depth
    if min_depth is None:
        min_depth = max(3, dag.max_depth() - 2)
    deep = _deep_terms(dag, min_depth)
    shallow = _shallow_terms(dag, max_depth=2)
    all_terms = [t for t in dag.terms() if t != dag.root_id]
    if not deep:
        raise ValueError("the DAG has no terms deep enough for module annotation")
    table = AnnotationTable(dag)
    signal = float(np.clip(study.config.biological_signal, 0.0, 1.0))

    # one deep function per planted module
    module_terms: dict[str, str] = {}
    for i, module_name in enumerate(study.modules):
        module_terms[module_name] = deep[int(rng.integers(0, len(deep)))]

    annotated_genes: set[str] = set()
    for module_name, members in study.modules.items():
        term = module_terms[module_name]
        children = dag.children(term)
        # the coarse ("generic") ancestor used for weakly annotated members:
        # the module term's ancestor at absolute depth 2, i.e. a term as broad
        # as GO's "metabolic process" example in the paper.
        lineage = dag.path_to_root(term)  # [term, ..., root]
        coarse_index = max(0, len(lineage) - 1 - 2)
        coarse = lineage[coarse_index]
        for gene in members:
            if rng.random() < signal:
                assigned = term
                if children and rng.random() < 0.3:
                    assigned = children[int(rng.integers(0, len(children)))]
                extra = shallow[int(rng.integers(0, len(shallow)))] if shallow else dag.root_id
                table.annotate(gene, [assigned, extra])
            else:
                # weak-signal module gene: only a coarse ancestor plus one noise term
                noise_term = all_terms[int(rng.integers(0, len(all_terms)))]
                table.annotate(gene, [coarse, noise_term])
            annotated_genes.add(gene)

    for gene in study.matrix.genes:
        if gene in annotated_genes:
            continue
        picks = [all_terms[int(rng.integers(0, len(all_terms)))] for _ in range(background_terms_per_gene)]
        table.annotate(gene, picks)
    return table


def make_study_ontology(
    study: SyntheticStudy,
    depth: int = 8,
    branching: int = 3,
    seed: Optional[int] = None,
) -> tuple[GODag, AnnotationTable]:
    """Convenience: generate the DAG and the annotation table for a study."""
    dag_seed = study.seed * 31 + 7 if seed is None else seed
    dag = make_go_dag(depth=depth, branching=branching, seed=dag_seed)
    table = annotate_study(study, dag, seed=None if seed is None else seed + 1)
    return dag, table
