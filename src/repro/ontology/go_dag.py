"""A Gene-Ontology-like directed acyclic graph of functional terms.

The paper's orthogonal validation annotates cluster edges with the *deepest
common parent* (DCP) of the two genes' GO terms and scores the edge as
``DCP depth − term breadth``.  All of that only needs the DAG structure:
term depth (distance from the root), ancestor sets, deepest common ancestors
and shortest term-to-term paths.  :class:`GODag` provides those operations for
any rooted DAG — the synthetic generator in :mod:`repro.ontology.generator`
builds one shaped like the GO biological-process tree.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["GOTerm", "GODag"]


class GOTerm:
    """One ontology term: an identifier, a human-readable name and parent links."""

    __slots__ = ("term_id", "name", "parents", "children")

    def __init__(self, term_id: str, name: str = "") -> None:
        self.term_id = term_id
        self.name = name or term_id
        self.parents: list[str] = []
        self.children: list[str] = []

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GOTerm({self.term_id!r}, name={self.name!r})"


class GODag:
    """A rooted DAG of :class:`GOTerm` objects with the paper's query operations.

    The DAG is built incrementally with :meth:`add_term`; every term except the
    root must list at least one existing parent.  Cycles are rejected at
    insertion time (a parent must already exist, so the structure is built in
    topological order and can never contain a cycle).
    """

    def __init__(self, root_id: str = "GO:ROOT", root_name: str = "biological_process") -> None:
        self.root_id = root_id
        self._terms: dict[str, GOTerm] = {}
        root = GOTerm(root_id, root_name)
        self._terms[root_id] = root
        self._depth_cache: dict[str, int] = {root_id: 0}
        self._ancestor_cache: dict[str, frozenset[str]] = {}
        # Distance engine (all lazy, invalidated on structural changes): the
        # undirected parent/child structure as a CSRGraph, a term → row index
        # map, and one cached distance array per BFS source term_distance has
        # seen (bounded FIFO — see _SSSP_CACHE_LIMIT).  One BFS costs what
        # the old early-exit pair BFS cost, but serves *every* pair touching
        # that source afterwards — the enrichment scorer combines the same
        # annotation terms across thousands of cluster edges.
        self._sssp_cache: dict[str, np.ndarray] = {}
        self._dist_index: Optional[dict[str, int]] = None
        self._dist_csr: Optional[CSRGraph] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_term(self, term_id: str, parents: Iterable[str], name: str = "") -> GOTerm:
        """Add a term with the given parent term ids (all must already exist)."""
        if term_id in self._terms:
            raise ValueError(f"term {term_id!r} already exists")
        parent_list = list(dict.fromkeys(parents))
        if not parent_list:
            raise ValueError("every non-root term needs at least one parent")
        missing = [p for p in parent_list if p not in self._terms]
        if missing:
            raise KeyError(f"unknown parent terms: {missing}")
        term = GOTerm(term_id, name)
        term.parents = parent_list
        self._terms[term_id] = term
        for p in parent_list:
            self._terms[p].children.append(term_id)
        self._depth_cache[term_id] = 1 + max(self._depth_cache[p] for p in parent_list)
        self._ancestor_cache.pop(term_id, None)
        # A new leaf invalidates the distance engine twice over: the cached
        # CSR view and distance arrays are missing the term, and a leaf with
        # several parents creates parent–leaf–parent shortcuts that can
        # shorten existing undirected distances.
        self._invalidate_distances()
        return term

    def add_parent(self, term_id: str, parent_id: str) -> None:
        """Add an extra parent link (GO terms often have several parents).

        The link is rejected when it would create a cycle (i.e. when
        ``parent_id`` is a descendant of ``term_id``).  Depth is recomputed
        lazily as the maximum over parents; ancestor caches are invalidated.
        """
        term = self.term(term_id)
        parent = self.term(parent_id)
        if parent_id in term.parents:
            return
        if term_id in self.ancestors(parent_id):
            raise ValueError(f"adding parent {parent_id!r} to {term_id!r} would create a cycle")
        term.parents.append(parent_id)
        parent.children.append(term_id)
        # Longest-path depths of the term and its descendants may grow.
        self._ancestor_cache.clear()
        self._invalidate_distances()
        self._recompute_depths_from(term_id)

    def _recompute_depths_from(self, term_id: str) -> None:
        """Refresh longest-path depths for ``term_id`` and everything below it."""
        stack = [term_id]
        while stack:
            t = stack.pop()
            node = self._terms[t]
            if node.parents:
                new_depth = 1 + max(self._depth_cache[p] for p in node.parents)
            else:
                new_depth = 0
            if new_depth != self._depth_cache.get(t):
                self._depth_cache[t] = new_depth
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __contains__(self, term_id: str) -> bool:
        return term_id in self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def terms(self) -> list[str]:
        """Return every term id in insertion order (root first)."""
        return list(self._terms)

    def term(self, term_id: str) -> GOTerm:
        try:
            return self._terms[term_id]
        except KeyError:
            raise KeyError(f"unknown GO term {term_id!r}") from None

    def parents(self, term_id: str) -> list[str]:
        return list(self.term(term_id).parents)

    def children(self, term_id: str) -> list[str]:
        return list(self.term(term_id).children)

    def is_leaf(self, term_id: str) -> bool:
        return not self.term(term_id).children

    def depth(self, term_id: str) -> int:
        """Return the depth of a term: the longest path length from the root.

        The root has depth 0.  Longest-path depth matches the Gene Ontology
        convention that a term reachable through a more specific lineage is
        considered deeper (more specialised).
        """
        if term_id not in self._terms:
            raise KeyError(f"unknown GO term {term_id!r}")
        return self._depth_cache[term_id]

    def max_depth(self) -> int:
        """Return the depth of the deepest term in the DAG."""
        return max(self._depth_cache.values())

    # ------------------------------------------------------------------
    # ancestry
    # ------------------------------------------------------------------
    def ancestors(self, term_id: str, include_self: bool = True) -> frozenset[str]:
        """Return every ancestor of ``term_id`` (cached), optionally including itself."""
        if term_id not in self._terms:
            raise KeyError(f"unknown GO term {term_id!r}")
        cached = self._ancestor_cache.get(term_id)
        if cached is None:
            out: set[str] = {term_id}
            stack = list(self.term(term_id).parents)
            while stack:
                p = stack.pop()
                if p not in out:
                    out.add(p)
                    stack.extend(self.term(p).parents)
            cached = frozenset(out)
            self._ancestor_cache[term_id] = cached
        return cached if include_self else frozenset(cached - {term_id})

    def common_ancestors(self, term_a: str, term_b: str) -> frozenset[str]:
        """Return the common ancestors of two terms (including the terms themselves
        when one is an ancestor of the other)."""
        return self.ancestors(term_a) & self.ancestors(term_b)

    def deepest_common_parent(self, term_a: str, term_b: str) -> str:
        """Return the deepest common ancestor of two terms (ties broken lexically).

        This is the paper's DCP.  The root is always a common ancestor, so the
        result is well defined for any pair of terms in the DAG.
        """
        common = self.common_ancestors(term_a, term_b)
        return max(common, key=lambda t: (self._depth_cache[t], t))

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    #: At most this many per-source distance arrays are kept (FIFO).  Each
    #: array is one int64 per term, so the cache is bounded by
    #: ``limit × n_terms × 8`` bytes regardless of how many distinct
    #: annotation terms a long-lived DAG is queried with.
    _SSSP_CACHE_LIMIT = 1024

    def _invalidate_distances(self) -> None:
        self._sssp_cache.clear()
        self._dist_index = None
        self._dist_csr = None

    def _ensure_distance_csr(self) -> None:
        """Build the undirected parent/child structure as a CSRGraph (lazy).

        The parent links alone enumerate every undirected edge exactly once
        (child lists are their mirrors), so the term graph drops straight
        into :meth:`CSRGraph.from_edge_arrays`.
        """
        if self._dist_index is not None:
            return
        index = {t: i for i, t in enumerate(self._terms)}
        us = [
            index[t]
            for t, term in self._terms.items()
            for _ in term.parents
        ]
        vs = [index[p] for term in self._terms.values() for p in term.parents]
        self._dist_csr = CSRGraph.from_edge_arrays(
            tuple(self._terms),
            np.asarray(us, dtype=np.int64),
            np.asarray(vs, dtype=np.int64),
        )
        self._dist_index = index

    def _distances_from(self, src: int) -> np.ndarray:
        """All BFS distances from term row ``src`` (−1 where unreachable)."""
        csr = self._dist_csr
        dist = np.full(csr.n_vertices, -1, dtype=np.int64)
        dist[src] = 0
        frontier = np.array([src], dtype=np.int64)
        d = 0
        while frontier.size:
            d += 1
            nbrs, _ = csr.gather_rows(frontier)
            nbrs = nbrs[dist[nbrs] < 0]
            if nbrs.size == 0:
                break
            frontier = np.unique(nbrs)
            dist[frontier] = d
        return dist

    def term_distance(self, term_a: str, term_b: str) -> int:
        """Return the shortest undirected path length between two terms.

        This is the paper's *term breadth*: how far apart the two annotations
        sit in the ontology.  Terms in disconnected annotation namespaces
        would return ``-1``, but a rooted DAG is always connected.

        Distances come from a frontier-array BFS over a CSR view of the
        undirected term structure, cached per source term: one BFS costs what
        resolving a single pair used to cost, but the enrichment scorer asks
        for many pairs sharing a source — every cluster edge combines the
        same annotation terms — so amortised each additional pair is an array
        lookup.  Either endpoint's cached array answers (distance is
        symmetric).
        """
        if term_a == term_b:
            return 0
        self.term(term_a)
        self.term(term_b)
        cached = self._sssp_cache.get(term_a)
        if cached is not None:
            return int(cached[self._dist_index[term_b]])
        cached = self._sssp_cache.get(term_b)
        if cached is not None:
            return int(cached[self._dist_index[term_a]])
        self._ensure_distance_csr()
        src = term_a if term_a < term_b else term_b
        dst = term_b if src is term_a else term_a
        dist = self._distances_from(self._dist_index[src])
        if len(self._sssp_cache) >= self._SSSP_CACHE_LIMIT:
            self._sssp_cache.pop(next(iter(self._sssp_cache)))
        self._sssp_cache[src] = dist
        return int(dist[self._dist_index[dst]])

    def reference_term_distance(self, term_a: str, term_b: str) -> int:
        """Seed ``term_distance``: an early-exit pair BFS, no cross-pair reuse.

        Retained as the behavioural reference for the CSR frontier BFS (and
        as the baseline measurement in ``benchmarks/bench_workflow.py``);
        the test suite pins :meth:`term_distance` to it.
        """
        if term_a == term_b:
            return 0
        self.term(term_a)
        self.term(term_b)
        dist = {term_a: 0}
        queue: deque[str] = deque([term_a])
        result = -1
        while queue:
            t = queue.popleft()
            node = self._terms[t]
            for nxt in list(node.parents) + list(node.children):
                if nxt not in dist:
                    dist[nxt] = dist[t] + 1
                    if nxt == term_b:
                        result = dist[nxt]
                        queue.clear()
                        break
                    queue.append(nxt)
        return result

    def path_to_root(self, term_id: str) -> list[str]:
        """Return one shortest parent-chain from ``term_id`` up to the root."""
        self.term(term_id)
        # BFS upward (parents only).
        parent_of: dict[str, Optional[str]] = {term_id: None}
        queue: deque[str] = deque([term_id])
        while queue:
            t = queue.popleft()
            if t == self.root_id:
                path = [t]
                while parent_of[path[-1]] is not None:
                    path.append(parent_of[path[-1]])  # type: ignore[arg-type]
                return list(reversed(path))
            for p in self._terms[t].parents:
                if p not in parent_of:
                    parent_of[p] = t
                    queue.append(p)
        raise RuntimeError(f"term {term_id!r} is not connected to the root")  # pragma: no cover

    def subtree(self, term_id: str) -> set[str]:
        """Return every descendant of ``term_id`` (including itself)."""
        self.term(term_id)
        out = {term_id}
        stack = [term_id]
        while stack:
            t = stack.pop()
            for c in self._terms[t].children:
                if c not in out:
                    out.add(c)
                    stack.append(c)
        return out

    def validate(self) -> None:
        """Raise ``ValueError`` when parent/child links are inconsistent."""
        for tid, term in self._terms.items():
            for p in term.parents:
                if tid not in self._terms[p].children:
                    raise ValueError(f"parent link {tid} -> {p} missing reverse child link")
            for c in term.children:
                if tid not in self._terms[c].parents:
                    raise ValueError(f"child link {tid} -> {c} missing reverse parent link")
            if tid != self.root_id and not term.parents:
                raise ValueError(f"non-root term {tid} has no parents")
