"""A Gene-Ontology-like directed acyclic graph of functional terms.

The paper's orthogonal validation annotates cluster edges with the *deepest
common parent* (DCP) of the two genes' GO terms and scores the edge as
``DCP depth − term breadth``.  All of that only needs the DAG structure:
term depth (distance from the root), ancestor sets, deepest common ancestors
and shortest term-to-term paths.  :class:`GODag` provides those operations for
any rooted DAG — the synthetic generator in :mod:`repro.ontology.generator`
builds one shaped like the GO biological-process tree.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..kernels import resolve_kernels

__all__ = [
    "GOTerm",
    "GODag",
    "TermIndex",
    "TermDelta",
    "extended_term_index",
    "dcp_batch_arrays",
    "distance_batch_arrays",
]


class TermIndex:
    """An interned, int64-native snapshot of a :class:`GODag`'s term space.

    The batched enrichment engine never touches term *strings* in its hot
    loops; this index is the translation layer it computes on instead:

    * every term is interned to an ``int64`` id assigned in **sorted term-id
      order**, so comparing interned ids is exactly comparing term strings —
      the engine's tie-breaks (DCP "ties broken lexically", the scalar
      scorer's first-pair-wins candidate order) survive the translation
      bit-identically;
    * ``depths[t]`` is the longest-path depth of term ``t`` (the root's is 0);
    * the ancestor structure is CSR: ``anc_indices[anc_indptr[t]:anc_indptr[t+1]]``
      is the **sorted** array of ``t``'s ancestor ids including ``t`` itself,
      which turns common-ancestor queries into sorted-array intersections;
    * ``term_csr`` is the undirected parent/child structure as a
      :class:`CSRGraph` over interned ids (rows sorted), the BFS substrate for
      term distances.

    The index is a frozen snapshot: :meth:`GODag.term_index` caches one per
    DAG and drops it on any structural mutation.
    """

    __slots__ = (
        "terms",
        "id_of",
        "depths",
        "anc_indptr",
        "anc_indices",
        "term_csr",
        "_dist_rows",
    )

    #: Bound on the per-source distance-row cache (FIFO), mirroring
    #: ``GODag._SSSP_CACHE_LIMIT``: each row is one int64 per term.
    _DIST_ROW_LIMIT = 1024

    def __init__(self, dag: "GODag") -> None:
        self.terms: tuple[str, ...] = tuple(sorted(dag._terms))
        self.id_of: dict[str, int] = {t: i for i, t in enumerate(self.terms)}
        n = len(self.terms)
        self.depths = np.array([dag._depth_cache[t] for t in self.terms], dtype=np.int64)
        self.depths.setflags(write=False)
        # Ancestor CSR: process terms shallowest-first so every parent row is
        # complete before its children union it (the DAG guarantees
        # depth(parent) < depth(child) under longest-path depths).
        rows: list[Optional[np.ndarray]] = [None] * n
        own = np.arange(n, dtype=np.int64)
        for t in np.argsort(self.depths, kind="stable"):
            term = dag._terms[self.terms[t]]
            if not term.parents:
                rows[t] = own[t : t + 1]
                continue
            parent_rows = [rows[self.id_of[p]] for p in term.parents]
            rows[t] = np.unique(np.concatenate(parent_rows + [own[t : t + 1]]))
        counts = np.array([r.shape[0] for r in rows], dtype=np.int64)
        self.anc_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.anc_indptr[1:])
        self.anc_indices = np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
        self.anc_indptr.setflags(write=False)
        self.anc_indices.setflags(write=False)
        # Undirected term structure over interned ids (each parent link is one
        # undirected edge, exactly once).
        us = [self.id_of[t] for t, term in dag._terms.items() for _ in term.parents]
        vs = [self.id_of[p] for term in dag._terms.values() for p in term.parents]
        self.term_csr = CSRGraph.from_edge_arrays(
            range(n), np.asarray(us, dtype=np.int64), np.asarray(vs, dtype=np.int64)
        )
        self._dist_rows: dict[int, np.ndarray] = {}

    @property
    def n_terms(self) -> int:
        return len(self.terms)

    def ids_for(self, terms: Iterable[str]) -> np.ndarray:
        """Intern an iterable of term strings (raises ``KeyError`` on unknowns)."""
        id_of = self.id_of
        return np.array([id_of[t] for t in terms], dtype=np.int64)

    def ancestors_of(self, term_id: int) -> np.ndarray:
        """Sorted ancestor ids of one interned term, including itself."""
        return self.anc_indices[self.anc_indptr[term_id] : self.anc_indptr[term_id + 1]]

    def dcp_batch(self, a_ids: np.ndarray, b_ids: np.ndarray) -> np.ndarray:
        """Deepest common parent of each aligned pair, vectorised.

        Implements the scalar rule exactly — among common ancestors, maximise
        ``(depth, term)`` — via the sorted-ancestor-array intersection of
        :func:`dcp_batch_arrays`.
        """
        return dcp_batch_arrays(a_ids, b_ids, self.depths, self.anc_indptr, self.anc_indices)

    def distance_batch(
        self, a_ids: np.ndarray, b_ids: np.ndarray, kernels: Optional[str] = None
    ) -> np.ndarray:
        """Shortest undirected term distance of each aligned pair.

        Served from the cached per-source BFS rows where possible; cold
        sources fall to :func:`distance_batch_arrays`' batched frontier BFS.
        ``kernels`` selects the execution tier of the cold-source sweep (see
        :mod:`repro.kernels`).
        """
        return distance_batch_arrays(
            a_ids,
            b_ids,
            self.term_csr.indptr,
            self.term_csr.indices,
            row_cache=self._dist_rows,
            row_limit=self._DIST_ROW_LIMIT,
            kernels=kernels,
        )


@dataclass(frozen=True)
class TermDelta:
    """The outcome of one leaf-append batch (:meth:`GODag.append_leaf_terms`).

    ``old_to_new`` maps every *old* interned id to its id in ``new_index``
    (interning is in sorted term-string order, so appended terms renumber the
    id space; the map is strictly increasing, which is what lets sorted rows
    and packed pair keys remap by one gather without re-sorting).
    ``distances_safe`` reports whether distances between pre-existing terms
    are provably unchanged — when ``False`` the per-source distance rows were
    dropped and downstream breadth memos (the enrichment pair table) must
    reset too.
    """

    old_index: TermIndex
    new_index: TermIndex
    old_to_new: np.ndarray
    new_ids: np.ndarray  #: interned ids of the appended terms, insertion order
    distances_safe: bool


def extended_term_index(
    old: TermIndex, dag: "GODag", new_terms: Sequence[str]
) -> tuple[TermIndex, np.ndarray]:
    """Delta-build the :class:`TermIndex` of ``dag`` after appending leaves.

    ``old`` must be the index of ``dag`` *before* the terms in ``new_terms``
    (insertion order) were added, and every appended term must be a leaf
    (no children yet) — exactly what :meth:`GODag.append_leaf_terms`
    guarantees.  The interned id space is extended in sorted-string order:
    old ancestor rows survive as one monotone gather (``old_to_new`` is
    strictly increasing, so sorted rows stay sorted), only the appended
    terms' ancestor rows are unioned fresh, and the undirected term CSR is
    rebuilt from the remapped old edge list plus the new parent links.  The
    result is bit-identical to a cold ``TermIndex(dag)``; the per-source
    distance-row cache starts empty (the caller migrates it when safe).

    Returns ``(new_index, old_to_new)``.
    """
    terms = tuple(sorted(dag._terms))
    id_of = {t: i for i, t in enumerate(terms)}
    n = len(terms)
    old_n = len(old.terms)
    old_to_new = np.fromiter((id_of[t] for t in old.terms), dtype=np.int64, count=old_n)
    depths = np.empty(n, dtype=np.int64)
    depths[old_to_new] = old.depths
    for t in new_terms:
        depths[id_of[t]] = dag._depth_cache[t]
    depths.setflags(write=False)
    # Ancestor CSR: remap every old row with one gather (monotone map keeps
    # rows sorted); new leaf rows union their parents' finished rows.
    remapped = old_to_new[old.anc_indices]
    rows: list[Optional[np.ndarray]] = [None] * n
    for i_old in range(old_n):
        rows[old_to_new[i_old]] = remapped[old.anc_indptr[i_old] : old.anc_indptr[i_old + 1]]
    for t in new_terms:
        tid = id_of[t]
        parent_rows = [rows[id_of[p]] for p in dag._terms[t].parents]
        rows[tid] = np.unique(
            np.concatenate(parent_rows + [np.array([tid], dtype=np.int64)])
        )
    counts = np.array([r.shape[0] for r in rows], dtype=np.int64)
    anc_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=anc_indptr[1:])
    anc_indices = np.concatenate(rows)
    anc_indptr.setflags(write=False)
    anc_indices.setflags(write=False)
    # Undirected structure: old edges (upper-triangle extraction of the old
    # CSR — each edge once) remapped, plus one edge per new parent link.
    old_csr = old.term_csr
    row_of = np.repeat(np.arange(old_n, dtype=np.int64), np.diff(old_csr.indptr))
    tri = old_csr.indices > row_of
    us = [old_to_new[row_of[tri]]]
    vs = [old_to_new[old_csr.indices[tri]]]
    for t in new_terms:
        parents = dag._terms[t].parents
        us.append(np.full(len(parents), id_of[t], dtype=np.int64))
        vs.append(np.fromiter((id_of[p] for p in parents), dtype=np.int64, count=len(parents)))
    term_csr = CSRGraph.from_edge_arrays(range(n), np.concatenate(us), np.concatenate(vs))
    index = object.__new__(TermIndex)
    index.terms = terms
    index.id_of = id_of
    index.depths = depths
    index.anc_indptr = anc_indptr
    index.anc_indices = anc_indices
    index.term_csr = term_csr
    index._dist_rows = {}
    return index, old_to_new


def dcp_batch_arrays(
    a_ids: np.ndarray,
    b_ids: np.ndarray,
    depths: np.ndarray,
    anc_indptr: np.ndarray,
    anc_indices: np.ndarray,
) -> np.ndarray:
    """Deepest common parent of each aligned interned pair, on raw arrays.

    The a-side ancestor rows are gathered per pair and probed against the
    b-side rows with one packed ``searchsorted``: keying each b-row element
    by its pair index yields a globally sorted array (rows are sorted,
    pair ids ascend), so membership is a single binary search per candidate.
    Among the surviving common ancestors the per-pair maximum of the packed
    ``(depth, id)`` key reproduces the scalar rule exactly — ties fall to the
    larger interned id, which is the lexically larger term by construction.

    Free function on purpose: the parallel backends ship the depth/ancestor
    arrays (via the shared arena) instead of pickling an index object.
    """
    a_ids = np.ascontiguousarray(a_ids, dtype=np.int64)
    b_ids = np.ascontiguousarray(b_ids, dtype=np.int64)
    n_pairs = a_ids.shape[0]
    if n_pairs == 0:
        return np.empty(0, dtype=np.int64)
    k = np.int64(depths.shape[0])
    a_vals, a_pair = _gather_csr_rows(anc_indptr, anc_indices, a_ids)
    b_vals, b_pair = _gather_csr_rows(anc_indptr, anc_indices, b_ids)
    packed_b = b_pair * k + b_vals
    queries = a_pair * k + a_vals
    pos = np.searchsorted(packed_b, queries)
    pos[pos >= packed_b.shape[0]] = packed_b.shape[0] - 1
    common = packed_b[pos] == queries
    cand_vals = a_vals[common]
    cand_pair = a_pair[common]
    # Per-pair max of (depth, id), packed into one int64 key.  Every pair has
    # at least one common ancestor (the root), so no segment is empty.
    key = depths[cand_vals] * k + cand_vals
    seg = np.zeros(n_pairs + 1, dtype=np.int64)
    np.cumsum(np.bincount(cand_pair, minlength=n_pairs), out=seg[1:])
    best = np.maximum.reduceat(key, seg[:-1])
    return best % k


#: Cold-source count above which :func:`distance_batch_arrays` switches from
#: per-source frontier BFS rows to the multi-source bitset BFS.  Per-source
#: rows win for small warm batches (each row is cacheable and one BFS is a
#: handful of array ops); the bitset sweep wins as soon as the per-BFS numpy
#: call overhead would be paid more than a few dozen times.
_BITSET_SOURCE_THRESHOLD = 16


def distance_batch_arrays(
    a_ids: np.ndarray,
    b_ids: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    row_cache: Optional[dict[int, np.ndarray]] = None,
    row_limit: int = 0,
    kernels: Optional[str] = None,
) -> np.ndarray:
    """Undirected BFS distance of each aligned interned pair, on raw arrays.

    Pairs are grouped by their smaller endpoint.  Sources with a cached BFS
    distance row (``row_cache``, the :class:`TermIndex`'s FIFO table) are
    answered by a gather; a few cold sources run one frontier BFS each (the
    rows feed the cache, bounded by ``row_limit``); a *large* cold batch —
    the enrichment engine's first pass sees thousands of distinct sources —
    runs **one multi-source bitset BFS** instead: every source becomes a bit
    plane, one ``bitwise_or.reduceat`` over the CSR expands all frontiers a
    level at a time in C, and queries are answered the level their source's
    bit first reaches their destination (see :func:`_bitset_distance_queries`).

    Free function on purpose: the parallel backends ship the CSR arrays (via
    the shared arena) instead of pickling an index object.

    ``kernels`` selects the execution tier (see :mod:`repro.kernels`):
    ``reference`` restores the pre-bitset shape (one frontier BFS per cold
    source, whatever the batch size), ``jit`` swaps the numpy bitset sweep
    for the compiled kernel; the distances are identical on every tier.
    """
    tier = resolve_kernels(kernels)
    a_ids = np.ascontiguousarray(a_ids, dtype=np.int64)
    b_ids = np.ascontiguousarray(b_ids, dtype=np.int64)
    src = np.minimum(a_ids, b_ids)
    dst = np.maximum(a_ids, b_ids)
    out = np.zeros(a_ids.shape[0], dtype=np.int64)
    sources, inverse = np.unique(src, return_inverse=True)
    # Group query positions by source once (one stable argsort), so serving
    # a source — cached or fresh — is a slice, not a full scan of the batch.
    order = np.argsort(inverse, kind="stable")
    bounds = np.zeros(sources.shape[0] + 1, dtype=np.int64)
    np.cumsum(np.bincount(inverse, minlength=sources.shape[0]), out=bounds[1:])
    cold: list[int] = []
    for si, s in enumerate(sources.tolist()):
        row = row_cache.get(s) if row_cache else None
        if row is None:
            cold.append(si)
            continue
        q = order[bounds[si] : bounds[si + 1]]
        out[q] = row[dst[q]]
    if not cold:
        return out
    if tier == "reference" or len(cold) <= _BITSET_SOURCE_THRESHOLD:
        for si in cold:
            s = int(sources[si])
            row = _bfs_distances(indptr, indices, s)
            if row_cache is not None:
                if row_limit and len(row_cache) >= row_limit:
                    row_cache.pop(next(iter(row_cache)))
                row_cache[s] = row
            q = order[bounds[si] : bounds[si + 1]]
            out[q] = row[dst[q]]
        return out
    pending = np.concatenate([order[bounds[si] : bounds[si + 1]] for si in cold])
    if tier == "jit":
        from ..kernels import jit_impl

        out[pending] = jit_impl("bitset_bfs")(
            indptr,
            indices,
            np.ascontiguousarray(src[pending]),
            np.ascontiguousarray(dst[pending]),
        )
    else:
        out[pending] = _bitset_distance_queries(indptr, indices, src[pending], dst[pending])
    return out


def _bitset_distance_queries(
    indptr: np.ndarray, indices: np.ndarray, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Answer ``(src, dst)`` distance queries with one multi-source bitset BFS.

    Each distinct source owns one bit across ``W = ceil(S / 64)`` uint64
    words per vertex; ``reached[v]`` is the set of sources whose BFS has
    touched ``v``.  A level expands **all** frontiers at once:
    ``bitwise_or.reduceat(frontier[indices], indptr[:-1])`` ORs every
    vertex's neighbour masks in one C pass, newly-set bits advance the
    frontier, and every still-pending query whose source bit just reached
    its destination is answered with the current level.  Unreachable pairs
    (impossible in a rooted DAG) come back ``-1``, matching the scalar BFS.
    """
    n = indptr.shape[0] - 1
    out = np.full(src.shape[0], -1, dtype=np.int64)
    same = src == dst
    out[same] = 0
    pending = np.nonzero(~same)[0]
    if pending.size == 0 or indices.shape[0] == 0:
        return out
    sources, s_idx = np.unique(src, return_inverse=True)
    s_count = sources.shape[0]
    word = (s_idx // 64).astype(np.int64)
    bit = (s_idx % 64).astype(np.uint64)
    n_words = (s_count + 63) // 64
    reached = np.zeros((n, n_words), dtype=np.uint64)
    lane = np.arange(s_count, dtype=np.int64)
    np.bitwise_or.at(
        reached, (sources, lane // 64), np.uint64(1) << (lane % 64).astype(np.uint64)
    )
    # Reduce only over non-empty rows: consecutive non-empty rows tile
    # ``indices`` exactly, so their ``indptr`` starts are valid reduceat
    # segment bounds (zero-degree rows would otherwise repeat a start and
    # corrupt the preceding row's segment).
    nonempty = np.nonzero(np.diff(indptr) > 0)[0]
    row_starts = indptr[nonempty]
    frontier = reached.copy()
    d = 0
    while pending.size and frontier.any():
        d += 1
        new = np.zeros_like(reached)
        new[nonempty] = np.bitwise_or.reduceat(frontier[indices], row_starts, axis=0)
        new &= ~reached
        reached |= new
        hit = (new[dst[pending], word[pending]] >> bit[pending]) & np.uint64(1) != 0
        out[pending[hit]] = d
        pending = pending[~hit]
        frontier = new
    return out


def _bfs_distances(indptr: np.ndarray, indices: np.ndarray, src: int) -> np.ndarray:
    """Frontier-array BFS distances from ``src`` over raw CSR arrays (−1 = unreachable)."""
    n = indptr.shape[0] - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[src] = 0
    frontier = np.array([src], dtype=np.int64)
    d = 0
    while frontier.size:
        d += 1
        nbrs, _ = _gather_csr_rows(indptr, indices, frontier)
        nbrs = nbrs[dist[nbrs] < 0]
        if nbrs.size == 0:
            break
        frontier = np.unique(nbrs)
        dist[frontier] = d
    return dist


def _gather_csr_rows(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate CSR rows with one fancy index; returns ``(values, row_of)``.

    The free-function twin of :meth:`CSRGraph.gather_rows`, usable on any CSR
    pair (ancestor structure, annotation table) without a graph object —
    which is what the process backends ship across the boundary.
    """
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    row_base = np.zeros(rows.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=row_base[1:])
    take = np.repeat(starts - row_base, counts) + np.arange(total, dtype=np.int64)
    row_of = np.repeat(np.arange(rows.shape[0], dtype=np.int64), counts)
    return indices[take], row_of


class GOTerm:
    """One ontology term: an identifier, a human-readable name and parent links."""

    __slots__ = ("term_id", "name", "parents", "children")

    def __init__(self, term_id: str, name: str = "") -> None:
        self.term_id = term_id
        self.name = name or term_id
        self.parents: list[str] = []
        self.children: list[str] = []

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GOTerm({self.term_id!r}, name={self.name!r})"


class GODag:
    """A rooted DAG of :class:`GOTerm` objects with the paper's query operations.

    The DAG is built incrementally with :meth:`add_term`; every term except the
    root must list at least one existing parent.  Cycles are rejected at
    insertion time (a parent must already exist, so the structure is built in
    topological order and can never contain a cycle).
    """

    def __init__(self, root_id: str = "GO:ROOT", root_name: str = "biological_process") -> None:
        self.root_id = root_id
        self._terms: dict[str, GOTerm] = {}
        root = GOTerm(root_id, root_name)
        self._terms[root_id] = root
        self._depth_cache: dict[str, int] = {root_id: 0}
        self._ancestor_cache: dict[str, frozenset[str]] = {}
        # Distance engine (all lazy, invalidated on structural changes): the
        # undirected parent/child structure as a CSRGraph, a term → row index
        # map, and one cached distance array per BFS source term_distance has
        # seen (bounded FIFO — see _SSSP_CACHE_LIMIT).  One BFS costs what
        # the old early-exit pair BFS cost, but serves *every* pair touching
        # that source afterwards — the enrichment scorer combines the same
        # annotation terms across thousands of cluster edges.
        self._sssp_cache: dict[str, np.ndarray] = {}
        self._dist_index: Optional[dict[str, int]] = None
        self._dist_csr: Optional[CSRGraph] = None
        # Interned int64 snapshot for the batched enrichment engine; built
        # lazily by term_index() and dropped on any structural change.
        self._term_index: Optional[TermIndex] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _insert_term(self, term_id: str, parents: Iterable[str], name: str = "") -> GOTerm:
        """Validate and link one new term (shared by the cold and delta paths);
        performs **no** cache invalidation — callers own that."""
        if term_id in self._terms:
            raise ValueError(f"term {term_id!r} already exists")
        parent_list = list(dict.fromkeys(parents))
        if not parent_list:
            raise ValueError("every non-root term needs at least one parent")
        missing = [p for p in parent_list if p not in self._terms]
        if missing:
            raise KeyError(f"unknown parent terms: {missing}")
        term = GOTerm(term_id, name)
        term.parents = parent_list
        self._terms[term_id] = term
        for p in parent_list:
            self._terms[p].children.append(term_id)
        self._depth_cache[term_id] = 1 + max(self._depth_cache[p] for p in parent_list)
        self._ancestor_cache.pop(term_id, None)
        return term

    def add_term(self, term_id: str, parents: Iterable[str], name: str = "") -> GOTerm:
        """Add a term with the given parent term ids (all must already exist)."""
        term = self._insert_term(term_id, parents, name)
        # A new leaf invalidates the distance engine twice over: the cached
        # CSR view and distance arrays are missing the term, and a leaf with
        # several parents creates parent–leaf–parent shortcuts that can
        # shorten existing undirected distances.  append_leaf_terms is the
        # scoped-invalidation alternative for warm holders of the term index.
        self._invalidate_distances()
        return term

    def append_leaf_terms(
        self, specs: Sequence[tuple[str, Sequence[str]]]
    ) -> TermDelta:
        """Append a batch of leaf terms, delta-extending the term index.

        ``specs`` is ``[(term_id, parents), ...]`` in insertion order; parents
        may name earlier entries of the same batch.  Unlike :meth:`add_term`,
        which drops the whole distance engine, this path invalidates by
        *scope*:

        * depths and ancestor sets of existing terms never change under a
          leaf append, so the ancestor cache and depth cache are untouched;
        * the cached :class:`TermIndex` is extended via
          :func:`extended_term_index` (one monotone remap plus the new rows)
          instead of rebuilt from scratch;
        * per-source distance rows (the SSSP cache and the index's BFS rows)
          are *extended* — every path to a new leaf enters through a parent,
          so ``dist(src, leaf) = min_p dist(src, p) + 1`` — whenever the
          batch provably cannot shorten any existing distance: a
          single-parent leaf never can, and a multi-parent leaf cannot when
          its parents (all pre-existing) sit pairwise at distance ≤ 2.
          Batches that fail the test drop the distance rows (and report
          ``distances_safe=False`` so breadth memos downstream reset too).

        Returns the :class:`TermDelta` describing the id remap.
        """
        if not specs:
            raise ValueError("append_leaf_terms needs at least one term")
        old_index = self.term_index()
        # --- safety analysis against the *old* structure, before mutation ---
        batch_ids = {term_id for term_id, _parents in specs}
        safe = True
        check_a: list[int] = []
        check_b: list[int] = []
        for term_id, parents in specs:
            parent_list = list(dict.fromkeys(parents))
            if len(parent_list) <= 1:
                continue  # a pendant leaf can never create a shortcut
            if any(p in batch_ids for p in parent_list):
                safe = False  # multi-parent onto in-batch terms: don't prove, drop
                continue
            ids = [old_index.id_of[p] for p in parent_list if p in old_index.id_of]
            if len(ids) != len(parent_list):
                safe = False
                continue
            for x in range(len(ids)):
                for y in range(x + 1, len(ids)):
                    check_a.append(ids[x])
                    check_b.append(ids[y])
        if safe and check_a:
            dists = old_index.distance_batch(
                np.asarray(check_a, dtype=np.int64), np.asarray(check_b, dtype=np.int64)
            )
            safe = bool((dists <= 2).all())
        # --- mutate ---------------------------------------------------------
        inserted: list[str] = []
        try:
            for term_id, parents in specs:
                self._insert_term(term_id, parents)
                inserted.append(term_id)
        except Exception:
            # Leave no half-applied batch behind: unlink what went in and
            # fall back to the cold invalidation contract.
            for term_id in reversed(inserted):
                term = self._terms.pop(term_id)
                for p in term.parents:
                    self._terms[p].children.remove(term_id)
                self._depth_cache.pop(term_id, None)
            self._invalidate_distances()
            raise
        new_terms = [term_id for term_id, _parents in specs]
        new_index, old_to_new = extended_term_index(old_index, self, new_terms)
        # --- scoped invalidation -------------------------------------------
        # The scalar distance engine's CSR view is rebuilt lazily (cheap); its
        # per-source rows are positional in *insertion* order, which appends
        # preserve, so safe batches extend the rows instead of dropping them.
        self._dist_index = None
        self._dist_csr = None
        if safe:
            if self._sssp_cache:
                # term_distance serves cached rows through _dist_index without
                # touching _ensure_distance_csr, so keeping rows means the
                # scalar view must be rebuilt now (cheap: one edge sweep).
                self._ensure_distance_csr()
            positions = {t: i for i, t in enumerate(self._terms)}
            parent_positions = [
                np.fromiter(
                    (positions[p] for p in self._terms[t].parents),
                    dtype=np.int64,
                    count=len(self._terms[t].parents),
                )
                for t in new_terms
            ]
            for src, row in list(self._sssp_cache.items()):
                grown = np.concatenate([row, np.empty(len(new_terms), dtype=np.int64)])
                for k, ppos in enumerate(parent_positions):
                    grown[row.shape[0] + k] = grown[ppos].min() + 1
                self._sssp_cache[src] = grown
            # The index's BFS rows are keyed and indexed by interned ids:
            # remap each row through old_to_new, then fill the new leaves.
            n = new_index.n_terms
            parent_ids = [
                np.fromiter(
                    (new_index.id_of[p] for p in self._terms[t].parents),
                    dtype=np.int64,
                    count=len(self._terms[t].parents),
                )
                for t in new_terms
            ]
            leaf_ids = [new_index.id_of[t] for t in new_terms]
            for src, row in old_index._dist_rows.items():
                grown = np.empty(n, dtype=np.int64)
                grown[old_to_new] = row
                for lid, pids in zip(leaf_ids, parent_ids):
                    grown[lid] = grown[pids].min() + 1
                new_index._dist_rows[int(old_to_new[src])] = grown
        else:
            self._sssp_cache.clear()
        self._term_index = new_index
        return TermDelta(
            old_index=old_index,
            new_index=new_index,
            old_to_new=old_to_new,
            new_ids=np.fromiter(
                (new_index.id_of[t] for t in new_terms), dtype=np.int64, count=len(new_terms)
            ),
            distances_safe=safe,
        )

    def add_parent(self, term_id: str, parent_id: str) -> None:
        """Add an extra parent link (GO terms often have several parents).

        The link is rejected when it would create a cycle (i.e. when
        ``parent_id`` is a descendant of ``term_id``).  Depth is recomputed
        lazily as the maximum over parents; ancestor caches are invalidated.
        """
        term = self.term(term_id)
        parent = self.term(parent_id)
        if parent_id in term.parents:
            return
        if term_id in self.ancestors(parent_id):
            raise ValueError(f"adding parent {parent_id!r} to {term_id!r} would create a cycle")
        term.parents.append(parent_id)
        parent.children.append(term_id)
        # Only the child term and its descendants can see new ancestors from
        # this link, so invalidation is scoped to that subtree instead of
        # clearing the whole cache — every other term's ancestor set is
        # reachable without the new edge and stays valid.
        for t in self.subtree(term_id):
            self._ancestor_cache.pop(t, None)
        # Longest-path depths of the term and its descendants may grow.
        self._invalidate_distances()
        self._recompute_depths_from(term_id)

    def _recompute_depths_from(self, term_id: str) -> None:
        """Refresh longest-path depths for ``term_id`` and everything below it."""
        stack = [term_id]
        while stack:
            t = stack.pop()
            node = self._terms[t]
            if node.parents:
                new_depth = 1 + max(self._depth_cache[p] for p in node.parents)
            else:
                new_depth = 0
            if new_depth != self._depth_cache.get(t):
                self._depth_cache[t] = new_depth
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __contains__(self, term_id: str) -> bool:
        return term_id in self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def terms(self) -> list[str]:
        """Return every term id in insertion order (root first)."""
        return list(self._terms)

    def term(self, term_id: str) -> GOTerm:
        try:
            return self._terms[term_id]
        except KeyError:
            raise KeyError(f"unknown GO term {term_id!r}") from None

    def parents(self, term_id: str) -> list[str]:
        return list(self.term(term_id).parents)

    def children(self, term_id: str) -> list[str]:
        return list(self.term(term_id).children)

    def is_leaf(self, term_id: str) -> bool:
        return not self.term(term_id).children

    def depth(self, term_id: str) -> int:
        """Return the depth of a term: the longest path length from the root.

        The root has depth 0.  Longest-path depth matches the Gene Ontology
        convention that a term reachable through a more specific lineage is
        considered deeper (more specialised).
        """
        if term_id not in self._terms:
            raise KeyError(f"unknown GO term {term_id!r}")
        return self._depth_cache[term_id]

    def max_depth(self) -> int:
        """Return the depth of the deepest term in the DAG."""
        return max(self._depth_cache.values())

    # ------------------------------------------------------------------
    # ancestry
    # ------------------------------------------------------------------
    def ancestors(self, term_id: str, include_self: bool = True) -> frozenset[str]:
        """Return every ancestor of ``term_id`` (cached), optionally including itself."""
        if term_id not in self._terms:
            raise KeyError(f"unknown GO term {term_id!r}")
        cached = self._ancestor_cache.get(term_id)
        if cached is None:
            out: set[str] = {term_id}
            stack = list(self.term(term_id).parents)
            while stack:
                p = stack.pop()
                if p not in out:
                    out.add(p)
                    stack.extend(self.term(p).parents)
            cached = frozenset(out)
            self._ancestor_cache[term_id] = cached
        return cached if include_self else frozenset(cached - {term_id})

    def common_ancestors(self, term_a: str, term_b: str) -> frozenset[str]:
        """Return the common ancestors of two terms (including the terms themselves
        when one is an ancestor of the other)."""
        return self.ancestors(term_a) & self.ancestors(term_b)

    def deepest_common_parent(self, term_a: str, term_b: str) -> str:
        """Return the deepest common ancestor of two terms (ties broken lexically).

        This is the paper's DCP.  The root is always a common ancestor, so the
        result is well defined for any pair of terms in the DAG.
        """
        common = self.common_ancestors(term_a, term_b)
        return max(common, key=lambda t: (self._depth_cache[t], t))

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    #: At most this many per-source distance arrays are kept (FIFO).  Each
    #: array is one int64 per term, so the cache is bounded by
    #: ``limit × n_terms × 8`` bytes regardless of how many distinct
    #: annotation terms a long-lived DAG is queried with.
    _SSSP_CACHE_LIMIT = 1024

    def _invalidate_distances(self) -> None:
        self._sssp_cache.clear()
        self._dist_index = None
        self._dist_csr = None
        self._term_index = None

    def term_index(self) -> TermIndex:
        """Return the interned :class:`TermIndex` snapshot of this DAG (cached).

        The snapshot is rebuilt lazily after any structural mutation
        (:meth:`add_term`, :meth:`add_parent`), so holders must re-fetch it
        rather than keep one across mutations — consumers (the enrichment
        engine) key their own caches on the snapshot's identity.
        """
        index = self._term_index
        if index is None:
            index = TermIndex(self)
            self._term_index = index
        return index

    def _ensure_distance_csr(self) -> None:
        """Build the undirected parent/child structure as a CSRGraph (lazy).

        The parent links alone enumerate every undirected edge exactly once
        (child lists are their mirrors), so the term graph drops straight
        into :meth:`CSRGraph.from_edge_arrays`.
        """
        if self._dist_index is not None:
            return
        index = {t: i for i, t in enumerate(self._terms)}
        us = [
            index[t]
            for t, term in self._terms.items()
            for _ in term.parents
        ]
        vs = [index[p] for term in self._terms.values() for p in term.parents]
        self._dist_csr = CSRGraph.from_edge_arrays(
            tuple(self._terms),
            np.asarray(us, dtype=np.int64),
            np.asarray(vs, dtype=np.int64),
        )
        self._dist_index = index

    def _distances_from(self, src: int) -> np.ndarray:
        """All BFS distances from term row ``src`` (−1 where unreachable)."""
        return _bfs_distances(self._dist_csr.indptr, self._dist_csr.indices, src)

    def term_distance(self, term_a: str, term_b: str) -> int:
        """Return the shortest undirected path length between two terms.

        This is the paper's *term breadth*: how far apart the two annotations
        sit in the ontology.  Terms in disconnected annotation namespaces
        would return ``-1``, but a rooted DAG is always connected.

        Distances come from a frontier-array BFS over a CSR view of the
        undirected term structure, cached per source term: one BFS costs what
        resolving a single pair used to cost, but the enrichment scorer asks
        for many pairs sharing a source — every cluster edge combines the
        same annotation terms — so amortised each additional pair is an array
        lookup.  Either endpoint's cached array answers (distance is
        symmetric).
        """
        if term_a == term_b:
            return 0
        self.term(term_a)
        self.term(term_b)
        cached = self._sssp_cache.get(term_a)
        if cached is not None:
            return int(cached[self._dist_index[term_b]])
        cached = self._sssp_cache.get(term_b)
        if cached is not None:
            return int(cached[self._dist_index[term_a]])
        self._ensure_distance_csr()
        src = term_a if term_a < term_b else term_b
        dst = term_b if src is term_a else term_a
        dist = self._distances_from(self._dist_index[src])
        if len(self._sssp_cache) >= self._SSSP_CACHE_LIMIT:
            self._sssp_cache.pop(next(iter(self._sssp_cache)))
        self._sssp_cache[src] = dist
        return int(dist[self._dist_index[dst]])

    def reference_term_distance(self, term_a: str, term_b: str) -> int:
        """Seed ``term_distance``: an early-exit pair BFS, no cross-pair reuse.

        Retained as the behavioural reference for the CSR frontier BFS (and
        as the baseline measurement in ``benchmarks/bench_workflow.py``);
        the test suite pins :meth:`term_distance` to it.
        """
        if term_a == term_b:
            return 0
        self.term(term_a)
        self.term(term_b)
        dist = {term_a: 0}
        queue: deque[str] = deque([term_a])
        result = -1
        while queue:
            t = queue.popleft()
            node = self._terms[t]
            for nxt in list(node.parents) + list(node.children):
                if nxt not in dist:
                    dist[nxt] = dist[t] + 1
                    if nxt == term_b:
                        result = dist[nxt]
                        queue.clear()
                        break
                    queue.append(nxt)
        return result

    def path_to_root(self, term_id: str) -> list[str]:
        """Return one shortest parent-chain from ``term_id`` up to the root."""
        self.term(term_id)
        # BFS upward (parents only).
        parent_of: dict[str, Optional[str]] = {term_id: None}
        queue: deque[str] = deque([term_id])
        while queue:
            t = queue.popleft()
            if t == self.root_id:
                path = [t]
                while parent_of[path[-1]] is not None:
                    path.append(parent_of[path[-1]])  # type: ignore[arg-type]
                return list(reversed(path))
            for p in self._terms[t].parents:
                if p not in parent_of:
                    parent_of[p] = t
                    queue.append(p)
        raise RuntimeError(f"term {term_id!r} is not connected to the root")  # pragma: no cover

    def subtree(self, term_id: str) -> set[str]:
        """Return every descendant of ``term_id`` (including itself)."""
        self.term(term_id)
        out = {term_id}
        stack = [term_id]
        while stack:
            t = stack.pop()
            for c in self._terms[t].children:
                if c not in out:
                    out.add(c)
                    stack.append(c)
        return out

    def validate(self) -> None:
        """Raise ``ValueError`` when parent/child links are inconsistent."""
        for tid, term in self._terms.items():
            for p in term.parents:
                if tid not in self._terms[p].children:
                    raise ValueError(f"parent link {tid} -> {p} missing reverse child link")
            for c in term.children:
                if tid not in self._terms[c].parents:
                    raise ValueError(f"child link {tid} -> {c} missing reverse parent link")
            if tid != self.root_id and not term.parents:
                raise ValueError(f"non-root term {tid} has no parents")
