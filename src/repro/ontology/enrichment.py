"""Edge enrichment scoring (Dempsey et al. 2011) and cluster AEES.

The paper validates clusters *orthogonally* — not by their connectivity but by
how functionally coherent they are according to the Gene Ontology:

* every cluster edge ``(n1, n2)`` is annotated with the **deepest common
  parent** (DCP) of the two genes' GO terms;
* the edge score is ``DCP depth − term breadth`` where term breadth is the
  shortest ontology path between the two annotations — edges between genes
  with deep, nearby annotations score high, edges between unrelated genes
  score near (or below) zero;
* the **average edge enrichment score** (AEES) over all edges of a cluster
  ranks clusters; the paper uses AEES > 3.0 as the "biologically relevant"
  bar, and annotates the cluster with its dominating DCP term.

Two implementations live here:

* the **batched engine** (the default): edges are resolved over the interned
  term space of :class:`~repro.ontology.go_dag.TermIndex` /
  :class:`~repro.ontology.annotation.AnnotationIndex`.  The distinct packed
  ``(ta, tb)`` term pairs across all edges are scored once — DCP by
  vectorised sorted-ancestor-array intersection, breadth from per-source
  frontier-BFS distance rows — and memoised in a packed-key → ``(dcp,
  breadth)`` array table (:class:`_PairTable`); every edge then resolves by a
  gather plus a segment max, and whole cluster *sets* reduce to AEES /
  max-score / max-depth / dominant-term arrays with segment reductions
  (:meth:`EnrichmentScorer.score_cluster_graphs`).  An optional ``backend=``
  fans distinct-pair batches over
  :func:`~repro.parallel.runner.parallel_map`, shipping the term CSR and
  depth/annotation arrays once through a
  :class:`~repro.parallel.shm.SharedArena`.
* the **reference implementation**: the seed per-edge double loop over term
  pairs (:func:`reference_score_edge` / :func:`reference_score_cluster`),
  retained as the behavioural pin — the test suite asserts the batched
  engine reproduces it bit-identically (same DCP tie-breaks, same scores),
  and ``benchmarks/bench_enrichment.py`` measures the gap.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..graph.graph import Graph, edge_key
from .annotation import AnnotationIndex, AnnotationTable
from .go_dag import GODag, TermIndex, dcp_batch_arrays, distance_batch_arrays

__all__ = [
    "EdgeAnnotation",
    "ClusterEnrichment",
    "ClusterScores",
    "EnrichmentScorer",
    "score_edge",
    "score_cluster",
    "reference_score_edge",
    "reference_score_cluster",
]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


@dataclass(frozen=True)
class EdgeAnnotation:
    """The enrichment annotation of one edge.

    ``dcp`` is the deepest common parent term chosen among all pairs of the
    two genes' annotations, ``depth`` its depth, ``breadth`` the ontology
    distance between the chosen term pair and ``score = depth − breadth``.
    Unannotated endpoints yield the sentinel annotation with score 0 and no
    DCP.
    """

    edge: Edge
    dcp: Optional[str]
    depth: int
    breadth: int
    score: float


@dataclass
class ClusterEnrichment:
    """Enrichment summary of one cluster: per-edge annotations and aggregates."""

    edges: list[EdgeAnnotation] = field(default_factory=list)

    @property
    def aees(self) -> float:
        """Average edge enrichment score (0.0 for clusters with no scored edge)."""
        if not self.edges:
            return 0.0
        return sum(e.score for e in self.edges) / len(self.edges)

    @property
    def max_score(self) -> float:
        """Deepest (best) single edge score — the paper's "Max Score" column."""
        if not self.edges:
            return 0.0
        return max(e.score for e in self.edges)

    @property
    def max_depth(self) -> int:
        """Depth of the deepest DCP term seen in the cluster."""
        if not self.edges:
            return 0
        return max(e.depth for e in self.edges)

    def dominant_term(self) -> Optional[str]:
        """Return the most frequent DCP term across edges (the cluster's annotation)."""
        counts = Counter(e.dcp for e in self.edges if e.dcp is not None)
        if not counts:
            return None
        # most common; ties broken by term id for determinism
        best = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
        return best[0]

    def term_frequencies(self) -> dict[str, int]:
        """Return DCP term → number of edges annotated with it."""
        return dict(Counter(e.dcp for e in self.edges if e.dcp is not None))


@dataclass(frozen=True)
class ClusterScores:
    """Array-form enrichment aggregates of a *set* of clusters.

    One entry per scored cluster, aligned with the input order of
    :meth:`EnrichmentScorer.score_cluster_graphs`.  Values are bit-identical
    to building a :class:`ClusterEnrichment` per cluster (the sums involved
    are exact — edge scores are integer-valued) without materialising any
    per-edge objects.
    """

    aees: np.ndarray  #: float64, the paper's AEES per cluster
    max_score: np.ndarray  #: float64, best single edge score (0.0 when edgeless)
    max_depth: np.ndarray  #: int64, deepest winning DCP depth (0 when edgeless)
    n_edges: np.ndarray  #: int64, scored edges per cluster
    dominant: list[Optional[str]]  #: most frequent DCP term (count, then lexical)

    def __len__(self) -> int:
        return int(self.aees.shape[0])


def reference_score_edge(
    dag: GODag,
    annotations: AnnotationTable,
    u: Vertex,
    v: Vertex,
) -> EdgeAnnotation:
    """Seed ``score_edge``: the per-edge double loop over the endpoints' terms.

    Retained as the behavioural reference for the batched engine (and as the
    baseline measurement in ``benchmarks/bench_enrichment.py``); the test
    suite pins the engine to it.  When either endpoint has no annotation the
    edge scores 0 with no DCP — the paper treats scores at or below zero as
    likely noise.
    """
    terms_u = annotations.terms_of(str(u))
    terms_v = annotations.terms_of(str(v))
    key = edge_key(u, v)
    if not terms_u or not terms_v:
        return EdgeAnnotation(edge=key, dcp=None, depth=0, breadth=0, score=0.0)
    best: Optional[EdgeAnnotation] = None
    for ta in sorted(terms_u):
        for tb in sorted(terms_v):
            dcp = dag.deepest_common_parent(ta, tb)
            depth = dag.depth(dcp)
            breadth = dag.term_distance(ta, tb)
            score = float(depth - breadth)
            candidate = EdgeAnnotation(edge=key, dcp=dcp, depth=depth, breadth=breadth, score=score)
            if best is None or candidate.score > best.score:
                best = candidate
    assert best is not None
    return best


def reference_score_cluster(
    dag: GODag,
    annotations: AnnotationTable,
    cluster_graph: Graph,
) -> ClusterEnrichment:
    """Seed ``score_cluster``: one :func:`reference_score_edge` per edge."""
    enrichment = ClusterEnrichment()
    for u, v in cluster_graph.iter_edges():
        enrichment.edges.append(reference_score_edge(dag, annotations, u, v))
    return enrichment


def score_edge(
    dag: GODag,
    annotations: AnnotationTable,
    u: Vertex,
    v: Vertex,
) -> EdgeAnnotation:
    """Score a single edge; see the module docstring for the scoring rule.

    Routed through the batched engine (a one-edge batch over the cached term
    and annotation indexes); pinned bit-identical to
    :func:`reference_score_edge` by the test suite.
    """
    return EnrichmentScorer(dag, annotations).edge(u, v)


def score_cluster(
    dag: GODag,
    annotations: AnnotationTable,
    cluster_graph: Graph,
) -> ClusterEnrichment:
    """Score every edge of a cluster subgraph and return the aggregate."""
    return EnrichmentScorer(dag, annotations).cluster(cluster_graph)


def _score_pair_chunk(
    a_ids: np.ndarray,
    b_ids: np.ndarray,
    depths: np.ndarray,
    anc_indptr: np.ndarray,
    anc_indices: np.ndarray,
    term_indptr: np.ndarray,
    term_indices: np.ndarray,
) -> np.ndarray:
    """Worker body of the ``backend=`` fan-out: score one distinct-pair chunk.

    Operates on raw arrays only — the process backends ship the term-space
    arrays as :class:`~repro.parallel.shm.ArenaRef` handles, resolved to
    zero-copy shared-memory views before this runs.  Returns a ``(2, n)``
    stack of ``(dcp, breadth)``.
    """
    dcp = dcp_batch_arrays(a_ids, b_ids, depths, anc_indptr, anc_indices)
    breadth = distance_batch_arrays(a_ids, b_ids, term_indptr, term_indices)
    return np.stack([dcp, breadth])


class _PairTable:
    """Packed-key → ``(dcp, breadth)`` memo over interned term pairs.

    Keys are ``min(ta, tb) * n_terms + max(ta, tb)`` — the scoring rule is
    symmetric in the pair, so the canonical orientation halves the table.
    Storage is three parallel sorted arrays; lookups are one ``searchsorted``
    gather and inserting a batch is one merge, so the table never touches
    Python dicts in the hot path.
    """

    __slots__ = ("keys", "dcp", "breadth")

    def __init__(self) -> None:
        self.keys = np.empty(0, dtype=np.int64)
        self.dcp = np.empty(0, dtype=np.int64)
        self.breadth = np.empty(0, dtype=np.int64)

    def ensure(
        self,
        uniq_keys: np.ndarray,
        n_terms: int,
        compute: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]],
    ) -> int:
        """Score whatever of ``uniq_keys`` (sorted, distinct) is not yet known.

        Returns the number of freshly computed pairs (benchmarks report it).
        """
        if self.keys.size:
            pos = np.minimum(np.searchsorted(self.keys, uniq_keys), self.keys.size - 1)
            new_keys = uniq_keys[self.keys[pos] != uniq_keys]
        else:
            new_keys = uniq_keys
        if new_keys.size == 0:
            return 0
        dcp, breadth = compute(new_keys // n_terms, new_keys % n_terms)
        keys = np.concatenate([self.keys, new_keys])
        order = np.argsort(keys, kind="stable")
        self.keys = keys[order]
        self.dcp = np.concatenate([self.dcp, dcp])[order]
        self.breadth = np.concatenate([self.breadth, breadth])[order]
        return int(new_keys.size)

    def gather(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(dcp, breadth)`` for keys that are all present."""
        pos = np.searchsorted(self.keys, keys)
        return self.dcp[pos], self.breadth[pos]

    def __len__(self) -> int:
        return int(self.keys.size)


class EnrichmentScorer:
    """A caching front-end for edge / cluster enrichment scoring.

    The overlap analysis scores the same gene pairs repeatedly (original
    network, four orderings, several processor counts), so results are
    memoised at two levels: per-edge :class:`EdgeAnnotation` objects for the
    object APIs, and the distinct-term-pair :class:`_PairTable` the batched
    engine resolves edges against.  The scorer is deliberately tied to one
    (DAG, annotation) pair.

    Parameters
    ----------
    engine:
        ``"batched"`` (default) resolves edges over the interned term space;
        ``"reference"`` forces the retained seed per-edge double loop —
        benchmarks use it to measure the seed baseline.
    backend:
        Execution backend for scoring *distinct-pair* batches, one of
        :func:`~repro.parallel.runner.available_backends`.  ``"serial"``
        (default) computes in-process and shares the term index's BFS-row
        cache; ``"thread"`` / ``"process"`` / ``"process-shm"`` fan chunks of
        ``pair_chunk`` pairs over :func:`~repro.parallel.runner.parallel_map`
        — the process backends ship the term CSR + depth/annotation arrays
        once through a :class:`~repro.parallel.shm.SharedArena` and only tiny
        chunk id arrays per call.
    processes:
        Optional worker bound for the parallel backends.
    pair_chunk:
        Target distinct pairs per fan-out chunk (also the minimum batch size
        worth leaving the serial path for).
    kernels:
        Kernel tier for the distance engine's cold-source sweep, one of
        :func:`~repro.kernels.available_kernel_tiers` (``None`` = ambient
        selection).  Purely a performance knob — every tier produces the
        identical scores.
    """

    def __init__(
        self,
        dag: GODag,
        annotations: AnnotationTable,
        engine: str = "batched",
        backend: str = "serial",
        processes: Optional[int] = None,
        pair_chunk: int = 4096,
        kernels: Optional[str] = None,
    ) -> None:
        if engine not in ("batched", "reference"):
            raise ValueError(f"engine must be 'batched' or 'reference', got {engine!r}")
        from ..parallel.runner import available_backends

        if backend not in available_backends():
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {available_backends()}"
            )
        if kernels is not None:
            from ..kernels import resolve_kernels

            resolve_kernels(kernels)  # validate eagerly; unknown names raise here
        self.dag = dag
        self.annotations = annotations
        self.engine = engine
        self.backend = backend
        self.processes = processes
        self.pair_chunk = int(pair_chunk)
        self.kernels = kernels
        self._cache: dict[Edge, EdgeAnnotation] = {}
        self._pairs = _PairTable()
        self._pairs_index: Optional[TermIndex] = None
        self._arena = None  # lazy SharedArena for the process backends
        self._static_refs: Optional[tuple] = None

    # ------------------------------------------------------------------
    # object APIs (per-edge cache)
    # ------------------------------------------------------------------
    def edge(self, u: Vertex, v: Vertex) -> EdgeAnnotation:
        """Return the (cached) enrichment annotation of one edge."""
        return self.edge_annotations([(u, v)])[0]

    def cluster(self, cluster_graph: Graph) -> ClusterEnrichment:
        """Return the enrichment of a cluster subgraph (edges scored via the cache)."""
        return ClusterEnrichment(edges=self.edge_annotations(list(cluster_graph.iter_edges())))

    def edge_subset(self, edges: Iterable[Edge]) -> ClusterEnrichment:
        """Score an explicit edge list (used for ad-hoc cluster comparisons)."""
        return ClusterEnrichment(edges=self.edge_annotations(list(edges)))

    def edge_annotations(self, edges: Sequence[Edge]) -> list[EdgeAnnotation]:
        """Annotate an edge list in one batch, first consulting the edge cache.

        Like the scalar scorer, each *new* edge is scored in the orientation
        it arrives in (the candidate tie-break is orientation-sensitive) and
        cached under its normalised :func:`edge_key`; repeats — in either
        orientation — are cache hits.
        """
        cache = self._cache
        keys = [edge_key(u, v) for u, v in edges]
        fresh: list[tuple[Edge, Edge]] = []  # (key, oriented edge), first occurrence
        seen: set[Edge] = set()
        for key, (u, v) in zip(keys, edges):
            if key not in cache and key not in seen:
                seen.add(key)
                fresh.append((key, (u, v)))
        if fresh:
            if self.engine == "reference":
                for key, (u, v) in fresh:
                    cache[key] = reference_score_edge(self.dag, self.annotations, u, v)
            else:
                term_index, ann_index = self._indexes()
                ru = ann_index.rows_for(u for _, (u, _v) in fresh)
                rv = ann_index.rows_for(v for _, (_u, v) in fresh)
                dcp, depth, breadth, score = self._edge_score_arrays(ru, rv, term_index, ann_index)
                terms = term_index.terms
                for i, (key, _uv) in enumerate(fresh):
                    d = int(dcp[i])
                    cache[key] = EdgeAnnotation(
                        edge=key,
                        dcp=terms[d] if d >= 0 else None,
                        depth=int(depth[i]),
                        breadth=int(breadth[i]),
                        score=float(score[i]),
                    )
        return [cache[key] for key in keys]

    # ------------------------------------------------------------------
    # array front-end (whole-bundle scoring, no per-edge objects)
    # ------------------------------------------------------------------
    def score_cluster_graphs(self, graphs: Sequence[Graph]) -> ClusterScores:
        """Score a set of cluster subgraphs in one concatenated pass.

        All edges of all clusters are resolved against the pair table
        together, and the per-cluster aggregates (AEES, max score, max depth,
        dominant term) come out of segment reductions — no per-edge Python
        objects.  Bit-identical to ``[self.cluster(g) for g in graphs]``
        aggregates (edge scores are integer-valued, so the float sums are
        exact in any order).
        """
        if self.engine == "reference":
            per = [self.cluster(g) for g in graphs]
            return ClusterScores(
                aees=np.array([c.aees for c in per], dtype=float),
                max_score=np.array([c.max_score for c in per], dtype=float),
                max_depth=np.array([c.max_depth for c in per], dtype=np.int64),
                n_edges=np.array([len(c.edges) for c in per], dtype=np.int64),
                dominant=[c.dominant_term() for c in per],
            )
        term_index, ann_index = self._indexes()
        n_clusters = len(graphs)
        flat_u: list[Vertex] = []
        flat_v: list[Vertex] = []
        counts = np.zeros(n_clusters, dtype=np.int64)
        for c, g in enumerate(graphs):
            before = len(flat_u)
            for u, v in g.iter_edges():
                flat_u.append(u)
                flat_v.append(v)
            counts[c] = len(flat_u) - before
        ru = ann_index.rows_for(flat_u)
        rv = ann_index.rows_for(flat_v)
        dcp, depth, breadth, score = self._edge_score_arrays(ru, rv, term_index, ann_index)
        cluster_of = np.repeat(np.arange(n_clusters, dtype=np.int64), counts)
        nonempty = counts > 0
        aees = np.zeros(n_clusters, dtype=float)
        np.divide(
            np.bincount(cluster_of, weights=score, minlength=n_clusters),
            counts,
            out=aees,
            where=nonempty,
        )
        max_score = np.full(n_clusters, -np.inf)
        np.maximum.at(max_score, cluster_of, score)
        max_score[~nonempty] = 0.0
        max_depth = np.zeros(n_clusters, dtype=np.int64)
        np.maximum.at(max_depth, cluster_of, depth)
        # Dominant term: the most frequent winning DCP per cluster, count
        # ties falling to the lexically larger term — a packed (count, id)
        # scatter-max over the distinct (cluster, dcp) occurrence counts.
        k1 = np.int64(term_index.n_terms) + 1
        annotated = dcp >= 0
        dom = np.full(n_clusters, -1, dtype=np.int64)
        if annotated.any():
            occ, occ_counts = np.unique(
                cluster_of[annotated] * k1 + dcp[annotated], return_counts=True
            )
            np.maximum.at(dom, occ // k1, occ_counts * k1 + occ % k1)
        terms = term_index.terms
        dominant = [terms[int(d % k1)] if d >= 0 else None for d in dom]
        return ClusterScores(
            aees=aees,
            max_score=max_score,
            max_depth=max_depth,
            n_edges=counts,
            dominant=dominant,
        )

    def cluster_aees(self, graphs: Sequence[Graph]) -> list[float]:
        """AEES of each cluster subgraph — the quadrant evaluation's input.

        One concatenated batch on the batched engine; the per-cluster object
        path on the reference engine.
        """
        if self.engine == "reference":
            return [self.cluster(g).aees for g in graphs]
        return self.score_cluster_graphs(graphs).aees.tolist()

    # ------------------------------------------------------------------
    # batched internals
    # ------------------------------------------------------------------
    def _indexes(self) -> tuple[TermIndex, AnnotationIndex]:
        """Current (term, annotation) index snapshots; resets the pair table
        when the DAG has structurally changed underneath the memo."""
        term_index = self.dag.term_index()
        if self._pairs_index is not term_index:
            self._pairs = _PairTable()
            self._pairs_index = term_index
            self._static_refs = None
        return term_index, self.annotations.indexed()

    def _edge_score_arrays(
        self,
        ru: np.ndarray,
        rv: np.ndarray,
        term_index: TermIndex,
        ann_index: AnnotationIndex,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Winning ``(dcp, depth, breadth, score)`` per edge of gene rows
        ``(ru, rv)`` (``-1`` marks an unannotated endpoint).

        Reproduces the scalar candidate scan exactly: candidates enumerate
        ``sorted(terms_u) × sorted(terms_v)`` in row-major order (the
        annotation rows are pre-sorted), and the winner is the *first*
        candidate attaining the maximal score — selected per edge with one
        ``maximum.reduceat`` over a packed ``(score, −candidate)`` key.
        """
        n_edges = ru.shape[0]
        dcp = np.full(n_edges, -1, dtype=np.int64)
        depth = np.zeros(n_edges, dtype=np.int64)
        breadth = np.zeros(n_edges, dtype=np.int64)
        out_score = np.zeros(n_edges, dtype=float)
        if n_edges == 0:
            return dcp, depth, breadth, out_score
        indptr = ann_index.indptr
        ru_safe = np.maximum(ru, 0)
        rv_safe = np.maximum(rv, 0)
        cu = (indptr[ru_safe + 1] - indptr[ru_safe]) * (ru >= 0)
        cv = (indptr[rv_safe + 1] - indptr[rv_safe]) * (rv >= 0)
        n_cands = cu * cv
        vi = np.nonzero(n_cands > 0)[0]
        if vi.size == 0:
            return dcp, depth, breadth, out_score
        seg = np.zeros(vi.size + 1, dtype=np.int64)
        np.cumsum(n_cands[vi], out=seg[1:])
        total = int(seg[-1])
        edge_of = np.repeat(np.arange(vi.size, dtype=np.int64), n_cands[vi])
        local = np.arange(total, dtype=np.int64) - seg[:-1][edge_of]
        inner = cv[vi][edge_of]
        ta = ann_index.term_ids[indptr[ru_safe[vi]][edge_of] + local // inner]
        tb = ann_index.term_ids[indptr[rv_safe[vi]][edge_of] + local % inner]
        k = np.int64(term_index.n_terms)
        keys = np.minimum(ta, tb) * k + np.maximum(ta, tb)
        self._pairs.ensure(
            np.unique(keys), int(k), lambda a, b: self._compute_pairs(a, b, term_index)
        )
        p_dcp, p_breadth = self._pairs.gather(keys)
        p_depth = term_index.depths[p_dcp]
        p_score = p_depth - p_breadth
        # First-max-wins per edge: pack (score, −candidate index) into one
        # int64 key; the global candidate index is strictly increasing inside
        # a segment, so the packed max is the earliest maximal candidate.
        m = np.int64(total + 1)
        best = np.maximum.reduceat(p_score * m - np.arange(total, dtype=np.int64), seg[:-1])
        best_score = -((-best) // m)  # ceil-div recovers the score half
        win = best_score * m - best
        dcp[vi] = p_dcp[win]
        depth[vi] = p_depth[win]
        breadth[vi] = p_breadth[win]
        out_score[vi] = best_score.astype(float)
        return dcp, depth, breadth, out_score

    def _compute_pairs(
        self, a_ids: np.ndarray, b_ids: np.ndarray, term_index: TermIndex
    ) -> tuple[np.ndarray, np.ndarray]:
        """Score a batch of distinct pairs, honouring the execution backend.

        The scorer's ``kernels`` tier scopes the serial and thread paths via
        a :func:`~repro.kernels.kernel_backend` context; process workers
        resolve their own ambient tier (inherited through ``REPRO_KERNELS``
        at spawn) — the distances are identical on every tier either way.
        """
        from ..kernels import kernel_backend

        if self.backend == "serial" or a_ids.shape[0] <= self.pair_chunk:
            return term_index.dcp_batch(a_ids, b_ids), term_index.distance_batch(
                a_ids, b_ids, kernels=self.kernels
            )
        from ..parallel.runner import parallel_map

        static = self._static_arrays(term_index)
        bounds = range(0, a_ids.shape[0], self.pair_chunk)
        items = [(a_ids[lo : lo + self.pair_chunk], b_ids[lo : lo + self.pair_chunk]) + static for lo in bounds]
        with kernel_backend(self.kernels):
            chunks = parallel_map(
                _score_pair_chunk, items, backend=self.backend, processes=self.processes
            )
        stacked = np.concatenate(chunks, axis=1)
        return stacked[0], stacked[1]

    def _static_arrays(self, term_index: TermIndex) -> tuple:
        """The five term-space arrays every pair chunk needs, backend-shaped.

        Thread workers share the parent's memory and take the arrays as-is;
        the process backends get :class:`~repro.parallel.shm.ArenaRef`
        handles exported **once** into a scorer-owned
        :class:`~repro.parallel.shm.SharedArena` (identity-deduplicated, so
        every later batch reuses the same segments), which workers resolve to
        zero-copy views.
        """
        arrays = (
            term_index.depths,
            term_index.anc_indptr,
            term_index.anc_indices,
            term_index.term_csr.indptr,
            term_index.term_csr.indices,
        )
        if self.backend not in ("process", "process-shm"):
            return arrays
        if self._static_refs is None:
            from ..parallel.shm import SharedArena, export_payload

            if self._arena is None:
                self._arena = SharedArena()
            self._static_refs = export_payload(arrays, self._arena)
        return self._static_refs

    # ------------------------------------------------------------------
    # incremental adoption (see repro.incremental)
    # ------------------------------------------------------------------
    def adopt_term_index(self, delta) -> None:
        """Migrate the warm memos across a leaf-append :class:`TermDelta`.

        Leaf appends never change the depths or ancestor sets of existing
        terms, so memoised DCPs stay correct; distances between existing
        terms are unchanged exactly when ``delta.distances_safe``.  When the
        pair table is pinned to ``delta.old_index`` and the batch is safe,
        its packed keys are remapped through the strictly-increasing
        ``old_to_new`` gather (unpack with the old ``n_terms``, gather,
        repack with the new — monotone per component, so the key array stays
        sorted) instead of being dropped; unsafe batches reset the table
        *and* the per-edge cache, whose breadth components may be stale.
        """
        if (
            self._pairs_index is delta.old_index
            and delta.distances_safe
            and self._pairs.keys.size
        ):
            k_old = np.int64(delta.old_index.n_terms)
            k_new = np.int64(delta.new_index.n_terms)
            a = delta.old_to_new[self._pairs.keys // k_old]
            b = delta.old_to_new[self._pairs.keys % k_old]
            self._pairs.keys = a * k_new + b
            self._pairs.dcp = delta.old_to_new[self._pairs.dcp]
        else:
            self._pairs = _PairTable()
            if not delta.distances_safe:
                self._cache.clear()
        self._pairs_index = delta.new_index
        self._static_refs = None

    def invalidate_genes(self, genes: Iterable[Hashable]) -> None:
        """Drop per-edge memos touching ``genes`` (their annotation sets changed).

        The pair table survives — it memoises *term* pairs, which are
        annotation-independent; only the per-edge winners over the changed
        genes' candidate sets can move.
        """
        changed = {str(g) for g in genes}
        if not changed:
            return
        stale = [
            key
            for key in self._cache
            if str(key[0]) in changed or str(key[1]) in changed
        ]
        for key in stale:
            del self._cache[key]

    def close(self) -> None:
        """Release the scorer's shared-memory segments (idempotent).

        Only meaningful after process-backend use; the arena is also covered
        by the interpreter-exit safety net, so forgetting this leaks nothing
        past the process.
        """
        if self._arena is not None:
            self._arena.unlink()
            self._arena = None
            self._static_refs = None

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    @property
    def pair_table_size(self) -> int:
        """Distinct term pairs memoised by the batched engine."""
        return len(self._pairs)
