"""Edge enrichment scoring (Dempsey et al. 2011) and cluster AEES.

The paper validates clusters *orthogonally* — not by their connectivity but by
how functionally coherent they are according to the Gene Ontology:

* every cluster edge ``(n1, n2)`` is annotated with the **deepest common
  parent** (DCP) of the two genes' GO terms;
* the edge score is ``DCP depth − term breadth`` where term breadth is the
  shortest ontology path between the two annotations — edges between genes
  with deep, nearby annotations score high, edges between unrelated genes
  score near (or below) zero;
* the **average edge enrichment score** (AEES) over all edges of a cluster
  ranks clusters; the paper uses AEES > 3.0 as the "biologically relevant"
  bar, and annotates the cluster with its dominating DCP term.

This module implements the edge scorer, the cluster scorer and the dominant
term annotation, caching per-gene-pair scores because overlap analysis scores
the same edges under several filters.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable
from dataclasses import dataclass, field
from typing import Optional

from ..graph.graph import Graph, edge_key
from .annotation import AnnotationTable
from .go_dag import GODag

__all__ = [
    "EdgeAnnotation",
    "ClusterEnrichment",
    "EnrichmentScorer",
    "score_edge",
    "score_cluster",
]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


@dataclass(frozen=True)
class EdgeAnnotation:
    """The enrichment annotation of one edge.

    ``dcp`` is the deepest common parent term chosen among all pairs of the
    two genes' annotations, ``depth`` its depth, ``breadth`` the ontology
    distance between the chosen term pair and ``score = depth − breadth``.
    Unannotated endpoints yield the sentinel annotation with score 0 and no
    DCP.
    """

    edge: Edge
    dcp: Optional[str]
    depth: int
    breadth: int
    score: float


@dataclass
class ClusterEnrichment:
    """Enrichment summary of one cluster: per-edge annotations and aggregates."""

    edges: list[EdgeAnnotation] = field(default_factory=list)

    @property
    def aees(self) -> float:
        """Average edge enrichment score (0.0 for clusters with no scored edge)."""
        if not self.edges:
            return 0.0
        return sum(e.score for e in self.edges) / len(self.edges)

    @property
    def max_score(self) -> float:
        """Deepest (best) single edge score — the paper's "Max Score" column."""
        if not self.edges:
            return 0.0
        return max(e.score for e in self.edges)

    @property
    def max_depth(self) -> int:
        """Depth of the deepest DCP term seen in the cluster."""
        if not self.edges:
            return 0
        return max(e.depth for e in self.edges)

    def dominant_term(self) -> Optional[str]:
        """Return the most frequent DCP term across edges (the cluster's annotation)."""
        counts = Counter(e.dcp for e in self.edges if e.dcp is not None)
        if not counts:
            return None
        # most common; ties broken by term id for determinism
        best = max(counts.items(), key=lambda kv: (kv[1], kv[0]))
        return best[0]

    def term_frequencies(self) -> dict[str, int]:
        """Return DCP term → number of edges annotated with it."""
        return dict(Counter(e.dcp for e in self.edges if e.dcp is not None))


def score_edge(
    dag: GODag,
    annotations: AnnotationTable,
    u: Vertex,
    v: Vertex,
) -> EdgeAnnotation:
    """Score a single edge; see the module docstring for the scoring rule.

    When either endpoint has no annotation the edge scores 0 with no DCP —
    the paper treats scores at or below zero as likely noise.
    """
    terms_u = annotations.terms_of(str(u))
    terms_v = annotations.terms_of(str(v))
    key = edge_key(u, v)
    if not terms_u or not terms_v:
        return EdgeAnnotation(edge=key, dcp=None, depth=0, breadth=0, score=0.0)
    best: Optional[EdgeAnnotation] = None
    for ta in sorted(terms_u):
        for tb in sorted(terms_v):
            dcp = dag.deepest_common_parent(ta, tb)
            depth = dag.depth(dcp)
            breadth = dag.term_distance(ta, tb)
            score = float(depth - breadth)
            candidate = EdgeAnnotation(edge=key, dcp=dcp, depth=depth, breadth=breadth, score=score)
            if best is None or candidate.score > best.score:
                best = candidate
    assert best is not None
    return best


def score_cluster(
    dag: GODag,
    annotations: AnnotationTable,
    cluster_graph: Graph,
) -> ClusterEnrichment:
    """Score every edge of a cluster subgraph and return the aggregate."""
    enrichment = ClusterEnrichment()
    for u, v in cluster_graph.iter_edges():
        enrichment.edges.append(score_edge(dag, annotations, u, v))
    return enrichment


class EnrichmentScorer:
    """A caching front-end for edge / cluster enrichment scoring.

    The overlap analysis scores the same gene pairs repeatedly (original
    network, four orderings, several processor counts), so per-pair scores are
    memoised.  The scorer is deliberately tied to one (DAG, annotation) pair.
    """

    def __init__(self, dag: GODag, annotations: AnnotationTable) -> None:
        self.dag = dag
        self.annotations = annotations
        self._cache: dict[Edge, EdgeAnnotation] = {}

    def edge(self, u: Vertex, v: Vertex) -> EdgeAnnotation:
        """Return the (cached) enrichment annotation of one edge."""
        key = edge_key(u, v)
        hit = self._cache.get(key)
        if hit is None:
            hit = score_edge(self.dag, self.annotations, u, v)
            self._cache[key] = hit
        return hit

    def cluster(self, cluster_graph: Graph) -> ClusterEnrichment:
        """Return the enrichment of a cluster subgraph (edges scored via the cache)."""
        enrichment = ClusterEnrichment()
        for u, v in cluster_graph.iter_edges():
            enrichment.edges.append(self.edge(u, v))
        return enrichment

    def edge_subset(self, edges: Iterable[Edge]) -> ClusterEnrichment:
        """Score an explicit edge list (used for ad-hoc cluster comparisons)."""
        enrichment = ClusterEnrichment()
        for u, v in edges:
            enrichment.edges.append(self.edge(u, v))
        return enrichment

    @property
    def cache_size(self) -> int:
        return len(self._cache)
