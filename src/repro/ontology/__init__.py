"""Ontology substrate: GO-like DAG, annotations and edge-enrichment scoring.

Used for the paper's orthogonal validation: clusters are scored by the depth
and proximity of their genes' shared functional annotations (AEES), which
separates biologically meaningful clusters from coincidental ones.
"""

from .annotation import AnnotationIndex, AnnotationTable
from .enrichment import (
    ClusterEnrichment,
    ClusterScores,
    EdgeAnnotation,
    EnrichmentScorer,
    reference_score_cluster,
    reference_score_edge,
    score_cluster,
    score_edge,
)
from .generator import annotate_study, make_go_dag, make_study_ontology
from .go_dag import GODag, GOTerm, TermIndex

__all__ = [
    "GODag",
    "GOTerm",
    "TermIndex",
    "AnnotationTable",
    "AnnotationIndex",
    "EdgeAnnotation",
    "ClusterEnrichment",
    "ClusterScores",
    "EnrichmentScorer",
    "score_edge",
    "score_cluster",
    "reference_score_edge",
    "reference_score_cluster",
    "make_go_dag",
    "annotate_study",
    "make_study_ontology",
]
