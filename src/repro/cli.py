"""Command-line interface.

A small CLI so the pipeline can be driven without writing Python:

``python -m repro filter``
    generate (or load) a correlation network, apply a sampling filter and
    report / save the result;
``python -m repro analyze``
    run the full downstream analysis (MCODE + enrichment + overlap) for one
    dataset and filter configuration;
``python -m repro figure``
    regenerate one of the paper's figures and print its rows/series;
``python -m repro batch``
    run a sweep of figure experiments (dedup, disk cache, process fan-out);
``python -m repro datasets``
    list the built-in synthetic datasets and their scaled sizes;
``python -m repro kernels``
    report the kernel tiers (active tier, numba availability, optional
    warm-up/compile timings);
``python -m repro serve``
    start the resident warm-state analysis daemon (see :mod:`repro.serve`);
``python -m repro request``
    send one request to a running daemon and print its canonical JSON result.

Every command accepts ``--scale`` (default: the benchmark scale, see
``REPRO_SCALE``) and prints plain-text tables via :mod:`repro.pipeline.report`.
``filter`` and ``analyze`` additionally take ``--json``, which prints the
*canonical result payload* instead of the tables — byte-identical to what the
daemon serves for the same request, which is how the serving tests pin
cold/warm equivalence.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Optional, Sequence

from .core.sampling import apply_filter, filter_names
from .kernels import (
    available_kernel_tiers,
    kernel_tier_info,
    set_kernel_backend,
    warm_kernels,
)
from .parallel.runner import available_backends, configure_supervision
from .expression.datasets import DATASET_CONFIGS, dataset_names, make_study
from .graph.io import write_edge_list
from .graph.ordering import get_ordering, ordering_names
from .pipeline import experiments as exp
from .pipeline.batch import (
    DRIVERS,
    RunSpec,
    driver_accepts,
    driver_names,
    get_driver,
    parse_scale,
    run_batch,
)
from .pipeline.report import format_kv, format_table
from .pipeline.workflow import (
    analysis_payload,
    analyze_filter,
    filter_payload,
    prepare_dataset,
)

__all__ = ["build_parser", "main"]

#: Figure drivers shared with the batch engine (one registry, two commands).
_FIGURES = DRIVERS


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel adaptive (chordal-subgraph) sampling for biological networks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="list the built-in synthetic datasets")
    datasets.add_argument("--scale", type=float, default=None, help="dataset scale (default: REPRO_SCALE or 0.1)")

    kernels = sub.add_parser(
        "kernels",
        help="report the kernel backend tiers (active tier, numba availability)",
    )
    kernels.add_argument(
        "--warm",
        action="store_true",
        help="compile every jit kernel on tiny inputs and report per-kernel "
        "warm-up seconds (a no-op without numba)",
    )

    filt = sub.add_parser("filter", help="apply a sampling filter to a dataset's correlation network")
    filt.add_argument("--dataset", choices=dataset_names(), default="CRE")
    filt.add_argument("--scale", type=float, default=None)
    filt.add_argument("--method", choices=filter_names(), default="chordal")
    filt.add_argument("--ordering", choices=ordering_names(), default="natural")
    filt.add_argument("--partitions", type=int, default=1, help="number of simulated processors")
    filt.add_argument("--partition-method", default="block", help="block / bfs / hash / greedy")
    filt.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="execution backend for the parallel chordal filters "
        "(default: each filter's own — serial for the no-communication "
        "sampler, threaded SPMD for the with-communication one); "
        "'process-shm' runs ranks on real cores with zero-copy "
        "shared-memory graph buffers",
    )
    filt.add_argument("--seed", type=int, default=0, help="seed for the random-walk filter")
    filt.add_argument("--output", default=None, help="write the filtered network as an edge list to this path")
    filt.add_argument(
        "--json",
        action="store_true",
        help="print the canonical result payload (one JSON line) instead of tables",
    )
    _add_kernels_arg(filt)
    _add_supervision_args(filt)

    analyze = sub.add_parser("analyze", help="full analysis: filter + MCODE + enrichment + overlap")
    analyze.add_argument("--dataset", choices=dataset_names(), default="CRE")
    analyze.add_argument("--scale", type=float, default=None)
    analyze.add_argument("--method", choices=filter_names(), default="chordal")
    analyze.add_argument("--ordering", choices=ordering_names(), default="natural")
    analyze.add_argument("--partitions", type=int, default=1)
    analyze.add_argument("--partition-method", default="block", help="block / bfs / hash / greedy")
    analyze.add_argument("--seed", type=int, default=0, help="seed for the random-walk filter")
    analyze.add_argument("--top", type=int, default=10, help="number of clusters to list")
    analyze.add_argument(
        "--json",
        action="store_true",
        help="print the canonical result payload (one JSON line) instead of tables",
    )
    _add_kernels_arg(analyze)
    _add_supervision_args(analyze)

    serve = sub.add_parser(
        "serve",
        help="start the resident analysis daemon (warm bundles, caching, batching)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 picks a free port")
    serve.add_argument(
        "--preload",
        default="",
        help="comma-separated datasets to warm before accepting clients",
    )
    serve.add_argument("--scale", type=float, default=None)
    serve.add_argument("--workers", type=int, default=4, help="executor threads")
    serve.add_argument("--max-pending", type=int, default=64, help="admission queue bound")
    serve.add_argument("--cache-size", type=int, default=256, help="LRU result-cache entries")
    serve.add_argument(
        "--arena-dir",
        default=None,
        help="back the daemon's shared arena with memory-mapped files in this "
        "directory; exported bundles persist across restarts (warm restart "
        "re-adopts them instead of rebuilding)",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        help="write the bound port to this file once listening (for scripts)",
    )
    _add_kernels_arg(serve)
    _add_supervision_args(serve)

    request = sub.add_parser("request", help="send one request to a running daemon")
    request.add_argument("op", help="operation: filter / classify / enrich / ping / stats / reload / update / shutdown")
    request.add_argument("--host", default="127.0.0.1")
    request.add_argument("--port", type=int, default=None)
    request.add_argument("--port-file", default=None, help="read the daemon's port from this file")
    request.add_argument(
        "--params",
        default="{}",
        help='request parameters as one JSON object, e.g. \'{"dataset": "CRE"}\'',
    )
    request.add_argument("--timeout", type=float, default=600.0)
    request.add_argument(
        "--connect-retries",
        type=int,
        default=20,
        help="retry a refused connection (and a missing port file) this many "
        "times with seeded backoff, so a request issued right after "
        "`repro serve &` waits for the daemon instead of failing (0 disables)",
    )
    request.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a transient request failure (busy / timeout / dropped "
        "connection) this many times; requests are idempotent, so a retry "
        "returns the byte-identical payload",
    )
    update_opts = request.add_argument_group(
        "update op", "mutation sizes for the `update` op (merged into --params)"
    )
    update_opts.add_argument("--add-samples", type=int, default=None, metavar="N")
    update_opts.add_argument("--add-genes", type=int, default=None, metavar="N")
    update_opts.add_argument("--add-annotations", type=int, default=None, metavar="N")
    update_opts.add_argument("--add-terms", type=int, default=None, metavar="N")
    update_opts.add_argument(
        "--update-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="seed of the synthesised mutation payload (params key: seed)",
    )

    spmd_worker = sub.add_parser(
        "spmd-worker",
        help="join a process-sock SPMD hub as one external worker (scale-out "
        "tier); hub and worker must share the same REPRO_SOCK_AUTHKEY",
    )
    spmd_worker.add_argument("--host", default=None, help="hub host (default REPRO_SOCK_HOST or 127.0.0.1)")
    spmd_worker.add_argument("--port", type=int, default=None, help="hub port (default REPRO_SOCK_PORT)")
    spmd_worker.add_argument(
        "--connect-timeout",
        type=float,
        default=None,
        help="seconds to keep retrying the hub connection "
        "(default REPRO_SOCK_CONNECT_TIMEOUT or 30)",
    )

    figure = sub.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("name", choices=sorted(_FIGURES), help="figure / claim to regenerate")
    figure.add_argument("--scale", type=float, default=None)

    batch = sub.add_parser(
        "batch",
        help="run a batch of figure experiments (dedup, disk cache, process fan-out)",
    )
    batch.add_argument(
        "--figures",
        default="all",
        help="comma-separated driver names (see `repro figure -h`) or 'all'",
    )
    batch.add_argument(
        "--scale",
        dest="scales",
        default=None,
        help="comma-separated scales: floats or tiny/small/default/full "
        "(default: REPRO_SCALE or 0.1)",
    )
    batch.add_argument(
        "--ordering",
        dest="orderings",
        default=None,
        help="comma-separated vertex orderings, applied to drivers that take one",
    )
    batch.add_argument(
        "--seed",
        dest="seeds",
        default=None,
        help="comma-separated seeds, applied to drivers that take one",
    )
    batch.add_argument("--jobs", type=int, default=1, help="worker processes (1 = in-process)")
    batch.add_argument(
        "--cache-dir",
        default=".repro-batch-cache",
        help="directory for per-run JSON results (spec-hash keyed)",
    )
    batch.add_argument("--no-cache", action="store_true", help="disable the disk cache")
    batch.add_argument(
        "--arena-dir",
        default=None,
        help="persistent file-backed arena directory shared by the batch's "
        "process-shm filter runs (bundles survive across batches)",
    )
    batch.add_argument("--force", action="store_true", help="re-run even on cache hits")
    batch.add_argument("--root-seed", type=int, default=0, help="root of the per-run RNG streams")

    return parser


def _add_kernels_arg(parser: argparse.ArgumentParser) -> None:
    """Shared kernel-tier flag (filter / analyze / serve)."""
    parser.add_argument(
        "--kernels",
        choices=["auto"] + available_kernel_tiers(),
        default=None,
        help="kernel tier for the hot loops: 'reference' (seed bodies), "
        "'numpy' (array kernels), 'jit' (compiled, needs the repro[kernels] "
        "extra) or 'auto' (jit when available); every tier produces "
        "identical results",
    )


def _apply_kernels(args: argparse.Namespace) -> None:
    """Install the CLI's kernel-tier choice process-wide.

    Sets both the registry default and ``REPRO_KERNELS``, so spawned process
    workers (which inherit the environment, not the registry) resolve the
    same tier.
    """
    if getattr(args, "kernels", None):
        import os

        os.environ["REPRO_KERNELS"] = args.kernels
        set_kernel_backend(args.kernels)


def _add_supervision_args(parser: argparse.ArgumentParser) -> None:
    """Shared fault-supervision flags (filter / analyze / serve)."""
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retry a failed parallel round this many times before giving up "
        "(default: the built-in supervision policy)",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="fail instead of degrading to a simpler execution backend when "
        "the parallel substrate (pool, shared-memory arena) cannot be "
        "brought up",
    )


def _apply_supervision(args: argparse.Namespace) -> None:
    """Install the CLI's supervision overrides on the process-wide policy."""
    configure_supervision(
        max_retries=args.max_retries,
        degrade=False if args.no_degrade else None,
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    scale = args.scale if args.scale is not None else exp.default_scale()
    rows = []
    for name in dataset_names():
        config = DATASET_CONFIGS[name].scaled(scale)
        rows.append(
            {
                "dataset": name,
                "genes": config.n_genes,
                "samples": config.n_samples,
                "modules": config.n_modules,
                "noise_chains": config.n_noise_chains,
                "noise_clumps": config.n_noise_clumps,
                "biological_signal": config.biological_signal,
            }
        )
    print(format_table(rows, title=f"Built-in synthetic datasets at scale {scale}"))
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    info = kernel_tier_info()
    report = {
        "tiers": ", ".join(info["tiers"]),
        "requested": info["requested"],
        "active": info["active"],
        "jit_available": info["jit_available"],
        "numba": info["numba"] or "not installed",
    }
    if args.warm:
        timings = warm_kernels()
        for name, seconds in sorted(timings.items()):
            report[f"warm[{name}]"] = f"{seconds:.3f}s"
        if not timings:
            report["warm"] = "skipped (jit tier unavailable)"
    print(format_kv(report, title="kernel backend tiers"))
    return 0


def _cmd_filter(args: argparse.Namespace) -> int:
    _apply_kernels(args)
    _apply_supervision(args)
    scale = args.scale if args.scale is not None else exp.default_scale()
    study = make_study(args.dataset, scale=scale)
    network = study.network()
    result = apply_filter(
        network,
        method=args.method,
        ordering=args.ordering if args.method != "random_walk" else None,
        n_partitions=args.partitions,
        partition_method=args.partition_method,
        seed=args.seed,
        backend=args.backend,
    )
    if args.json:
        print(_canonical_json(filter_payload(result)))
    else:
        print(format_kv(result.summary(), title=f"{args.dataset} @ scale {scale}: {args.method}"))
    if args.output:
        write_edge_list(result.graph, args.output)
        if not args.json:
            print(f"filtered network written to {args.output}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    _apply_kernels(args)
    _apply_supervision(args)
    scale = args.scale if args.scale is not None else exp.default_scale()
    bundle = prepare_dataset(args.dataset, scale=scale)
    analysis = analyze_filter(
        bundle,
        method=args.method,
        ordering=args.ordering if args.method != "random_walk" else None,
        n_partitions=args.partitions,
        partition_method=args.partition_method,
        seed=args.seed,
    )
    if args.json:
        print(_canonical_json(analysis_payload(analysis)))
        return 0
    print(format_kv(analysis.summary(), title=analysis.label))
    rows = []
    for cluster, aees in list(zip(analysis.clusters, analysis.cluster_aees()))[: args.top]:
        rows.append(
            {
                "cluster": cluster.cluster_id,
                "size": cluster.n_vertices,
                "edges": cluster.n_edges,
                "mcode_score": cluster.score,
                "aees": aees,
            }
        )
    print()
    print(format_table(rows, title=f"top {len(rows)} clusters"))
    return 0


def _canonical_json(payload: dict) -> str:
    """The byte-exact serialisation both the CLI and the daemon emit."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ReproServer  # deferred: the daemon is opt-in

    _apply_kernels(args)
    _apply_supervision(args)
    scale = args.scale if args.scale is not None else exp.default_scale()
    preload = tuple(_split(args.preload))
    server = ReproServer(
        host=args.host,
        port=args.port,
        preload=preload,
        default_scale=scale,
        workers=args.workers,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
        arena_dir=args.arena_dir,
    )
    server.start()
    try:
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as fh:
                fh.write(f"{server.port}\n")
        print(
            f"repro serve: listening on {server.host}:{server.port} "
            f"(scale {scale}, {args.workers} workers"
            + (f", preloaded {', '.join(preload)}" if preload else "")
            + ")",
            flush=True,
        )
        server.serve_forever()
    finally:
        server.stop()
    return 0


def _read_port_file(path: str, retries: int) -> int:
    """Read the daemon's port file, waiting for it to appear when asked to.

    A daemon started with ``repro serve --port-file ... &`` writes the file
    only once it is listening; retrying the read (missing or still-empty
    file) with seeded backoff lets a request race that startup safely.
    """
    rng = random.Random(0)
    attempt = 0
    while True:
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read().strip()
            if not text:
                raise OSError(f"port file {path} is empty")
            return int(text)
        except (OSError, ValueError):
            if attempt >= retries:
                raise
            attempt += 1
            delay = min(2.0, 0.05 * 2 ** (attempt - 1))
            time.sleep(delay * (0.5 + 0.5 * rng.random()))


def _cmd_request(args: argparse.Namespace) -> int:
    from .serve import ServeClient, ServeError, ServeTimeout  # deferred

    connect_retries = max(0, args.connect_retries)
    try:
        params = json.loads(args.params)
    except ValueError as err:
        print(f"repro request: --params is not valid JSON: {err}", file=sys.stderr)
        return 2
    if not isinstance(params, dict):
        print("repro request: --params must be a JSON object", file=sys.stderr)
        return 2
    # Convenience flags for the `update` op; explicit flags win over --params.
    for flag, key in (
        (args.add_samples, "add_samples"),
        (args.add_genes, "add_genes"),
        (args.add_annotations, "add_annotations"),
        (args.add_terms, "add_terms"),
        (args.update_seed, "seed"),
    ):
        if flag is not None:
            params[key] = flag
    port = args.port
    try:
        if port is None and args.port_file:
            port = _read_port_file(args.port_file, connect_retries)
        if port is None:
            print("repro request: --port or --port-file is required", file=sys.stderr)
            return 2
        with ServeClient(
            host=args.host,
            port=port,
            timeout=args.timeout,
            connect_retries=connect_retries,
            max_retries=max(0, args.retries),
        ) as client:
            result = client.result(args.op, **params)
    except (ServeError, ServeTimeout, OSError, ValueError) as err:
        print(f"repro request: {err}", file=sys.stderr)
        return 1
    print(_canonical_json(result) if isinstance(result, dict) else json.dumps(result))
    return 0


def _split(raw: Optional[str]) -> list[str]:
    """Split a comma-separated CLI list, dropping empties; ``None`` → ``[]``."""
    if raw is None:
        return []
    return [part.strip() for part in raw.split(",") if part.strip()]


def _cmd_batch(args: argparse.Namespace) -> int:
    figures = [f.lower() for f in _split(args.figures)]
    if not figures or figures == ["all"]:
        figures = driver_names()
    try:
        if args.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {args.jobs}")
        scales = [parse_scale(s) for s in _split(args.scales)] or [exp.default_scale()]
        seeds = [int(s) for s in _split(args.seeds)] or [None]
        orderings = _split(args.orderings) or [None]
        for name in orderings:
            if name is not None:
                get_ordering(name)  # raises early, naming the valid orderings
        for figure in figures:
            get_driver(figure)  # raises early, naming the valid drivers
    except (KeyError, ValueError) as err:
        message = err.args[0] if err.args else str(err)
        print(f"repro batch: {message}", file=sys.stderr)
        return 2

    # Cross-product of the swept axes; an axis only applies to drivers that
    # accept it (the spec dedup collapses the resulting duplicates).
    specs = []
    for figure in figures:
        takes_ordering = driver_accepts(figure, "ordering") or driver_accepts(figure, "orderings")
        takes_seed = driver_accepts(figure, "seed")
        for scale in scales:
            for ordering in orderings if takes_ordering else [None]:
                for seed in seeds if takes_seed else [None]:
                    specs.append(
                        RunSpec.create(figure, scale, ordering=ordering, seed=seed)
                    )

    results = run_batch(
        specs,
        cache_dir=None if args.no_cache else args.cache_dir,
        jobs=args.jobs,
        force=args.force,
        root_seed=args.root_seed,
        arena_dir=args.arena_dir,
    )
    print(format_table([r.row() for r in results], title=f"batch: {len(results)} runs"))
    failed = [r for r in results if r.status == "failed"]
    for r in failed:
        print(f"FAILED {r.spec.figure} @ {r.spec.scale}: {r.error}")
    if not args.no_cache:
        print(f"results cached under {args.cache_dir}")
    return 1 if failed else 0


def _cmd_spmd_worker(args: argparse.Namespace) -> int:
    import os

    from .parallel.sock import worker_main  # deferred: workers are opt-in

    host = args.host or os.environ.get("REPRO_SOCK_HOST", "127.0.0.1")
    port = args.port if args.port is not None else os.environ.get("REPRO_SOCK_PORT")
    if port is None:
        print("repro spmd-worker: --port (or REPRO_SOCK_PORT) is required", file=sys.stderr)
        return 2
    print(f"repro spmd-worker: joining hub {host}:{int(port)}", flush=True)
    worker_main(host, int(port), args.connect_timeout)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    scale = args.scale if args.scale is not None else exp.default_scale()
    driver = _FIGURES[args.name]
    out = driver(scale=scale)
    _print_figure(args.name, out)
    return 0


def _print_figure(name: str, out: dict) -> None:
    """Render a figure driver's output as text tables (best effort per figure)."""
    if "rows" in out:
        print(format_table(out["rows"], title=name))
        return
    if name == "fig04":
        print(format_table(out["rows"], title=name))
    elif name == "fig05":
        for dataset, data in out["datasets"].items():
            print(format_table(data["overlap_points"][:30], title=f"{name} {dataset} (overlap, excerpt)"))
            print(f"{dataset}: new clusters = {len(data['new_cluster_points'])}")
    elif name in ("fig06", "fig07"):
        print(format_table(out["points"][:40], title=f"{name} (excerpt)"))
    elif name == "fig08":
        print(format_kv(out["node_overlap"], title="node overlap"))
        print(format_kv(out["edge_overlap"], title="edge overlap"))
    elif name == "fig09":
        print(format_kv(out["best_improvement"] or {}, title="largest AEES improvement"))
    elif name == "fig10":
        from .pipeline.report import format_series

        for label in ("small", "large"):
            print(format_series(out["series"][label], x_label="processors", title=f"{name} {label}"))
    elif name == "fig11":
        for network, rows in out["top_clusters"].items():
            print(format_table(rows, title=f"{name}: {network} clusters with AEES > 3"))
    else:  # pragma: no cover - defensive
        print(out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "datasets": _cmd_datasets,
        "kernels": _cmd_kernels,
        "filter": _cmd_filter,
        "analyze": _cmd_analyze,
        "figure": _cmd_figure,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "request": _cmd_request,
        "spmd-worker": _cmd_spmd_worker,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
