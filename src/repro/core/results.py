"""Result containers shared by all sampling filters.

Every filter — sequential or parallel, chordal or random walk — returns a
:class:`FilterResult` so that the downstream pipeline (clustering, enrichment,
overlap analysis, cost modelling) can treat them uniformly.  The result keeps
full provenance: which algorithm and ordering produced it, how the graph was
partitioned, how much work every rank performed, how many border edges were
duplicated and the simulated execution time.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import Any, Optional

from ..graph.graph import Graph
from ..parallel.timing import CostModel, RankWork

__all__ = ["FilterResult"]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


@dataclass
class FilterResult:
    """The outcome of applying a sampling filter to a network.

    Attributes
    ----------
    graph:
        The filtered network (all original vertices, surviving edges only).
    original:
        The network the filter was applied to (not copied).
    method:
        Registry name of the filter (``"chordal"``, ``"chordal_comm"``,
        ``"random_walk"``, …).
    ordering:
        Name of the vertex ordering used (``"natural"``, ``"high_degree"``,
        ``"low_degree"``, ``"rcm"``) — ``None`` when not applicable.
    n_partitions:
        Number of partitions / simulated processors (1 for sequential runs).
    partition_method:
        Name of the partitioner used (``None`` for sequential runs).
    border_edges:
        Canonical border edges of the partition (empty for sequential runs).
    accepted_border_edges:
        Border edges that survived the filter.
    duplicate_border_edges:
        Number of border edges accepted independently by both owning ranks;
        the paper notes these must be removed during the sequential analysis
        phase (at most ``b`` of them).
    rank_work:
        Per-rank work counters consumed by the scalability cost model.
    simulated_time:
        Modelled wall-clock seconds for the run (None until computed).
    wall_time:
        Actual seconds spent in this process (host measurement, informational).
    extra:
        Free-form provenance (seed, thresholds, cycle statistics, …).
    """

    graph: Graph
    original: Graph
    method: str
    ordering: Optional[str] = None
    n_partitions: int = 1
    partition_method: Optional[str] = None
    border_edges: list[Edge] = field(default_factory=list)
    accepted_border_edges: list[Edge] = field(default_factory=list)
    duplicate_border_edges: int = 0
    rank_work: list[RankWork] = field(default_factory=list)
    simulated_time: Optional[float] = None
    wall_time: Optional[float] = None
    extra: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def n_edges_kept(self) -> int:
        return self.graph.n_edges

    @property
    def n_edges_removed(self) -> int:
        return self.original.n_edges - self.graph.n_edges

    @property
    def edge_reduction(self) -> float:
        """Fraction of original edges removed by the filter.

        The paper interprets this as an estimate of the noise content of the
        network ("ideally, if the data is noise free, no reduction should
        occur").
        """
        if self.original.n_edges == 0:
            return 0.0
        return self.n_edges_removed / self.original.n_edges

    @property
    def n_border_edges(self) -> int:
        return len(self.border_edges)

    def compute_simulated_time(self, model: Optional[CostModel] = None, with_communication: Optional[bool] = None) -> float:
        """Fill in and return :attr:`simulated_time` using the cost model.

        ``with_communication`` defaults to whether the method name indicates
        the communicating variant.
        """
        if with_communication is None:
            with_communication = "comm" in self.method and "nocomm" not in self.method
        model = model or CostModel()
        self.simulated_time = model.execution_time(
            self.rank_work,
            with_communication=with_communication,
            duplicate_border_edges=self.duplicate_border_edges,
        )
        return self.simulated_time

    def summary(self) -> dict[str, Any]:
        """Return a flat dict suitable for tabulation in reports."""
        return {
            "method": self.method,
            "ordering": self.ordering,
            "n_partitions": self.n_partitions,
            "partition_method": self.partition_method,
            "n_vertices": self.graph.n_vertices,
            "edges_original": self.original.n_edges,
            "edges_kept": self.n_edges_kept,
            "edge_reduction": round(self.edge_reduction, 4),
            "border_edges": self.n_border_edges,
            "accepted_border_edges": len(self.accepted_border_edges),
            "duplicate_border_edges": self.duplicate_border_edges,
            "simulated_time": self.simulated_time,
        }
