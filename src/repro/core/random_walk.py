"""Parallel random-walk sampling — the control filter.

The paper compares its adaptive chordal filter against a standard
structure-agnostic sampler: a random walk.  The parallel variant mirrors the
chordal samplers' structure (partition, local phase, border phase) but every
decision is random:

* **local phase** — each rank performs a random walk on its partition's
  internal edges; at every step one of the ``d`` incident edges of the current
  vertex is selected with probability ``1/d`` (no visited list — vertices and
  edges may repeat); the walk stops once the number of selections reaches half
  of the partition's edge count.
* **border phase** — every border edge is assigned an independent Bernoulli(½)
  value and is kept when the value is 1.  No communication is required, so the
  filter is perfectly scalable and cheaper per edge than the chordal variant.

The rationale quoted by the paper is that tightly connected vertex groups are
revisited often and should therefore survive, but the experiments (and our
reproduction) show the surviving edge set is too thin for MCODE to recover any
cluster — which is precisely the paper's point H0a.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence
from typing import Optional

import numpy as np

from ..graph.graph import Graph, edge_key
from ..graph.partition import Partition, partition_graph
from ..parallel.rng import rank_rngs
from ..parallel.timing import RankWork
from .results import FilterResult

__all__ = ["parallel_random_walk_filter", "random_walk_edges"]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


def random_walk_edges(
    graph: Graph,
    rng: np.random.Generator,
    selection_fraction: float = 0.5,
) -> tuple[list[Edge], int]:
    """Run one random walk over ``graph`` and return (selected edges, n selections).

    The walk restarts at a uniformly random vertex whenever it reaches an
    isolated vertex.  Selection counting includes repeats, per the paper.
    """
    if not 0.0 < selection_fraction <= 1.0:
        raise ValueError("selection_fraction must lie in (0, 1]")
    vertices = graph.vertices()
    kept: set[Edge] = set()
    selections = 0
    target = int(selection_fraction * graph.n_edges)
    if not vertices or graph.n_edges == 0 or target == 0:
        return [], 0
    current = vertices[int(rng.integers(0, len(vertices)))]
    while selections < target:
        nbrs = graph.neighbors(current)
        if not nbrs:
            current = vertices[int(rng.integers(0, len(vertices)))]
            continue
        nxt = nbrs[int(rng.integers(0, len(nbrs)))]
        kept.add(edge_key(current, nxt))
        selections += 1
        current = nxt
    return sorted(kept, key=repr), selections


def parallel_random_walk_filter(
    graph: Graph,
    n_partitions: int,
    seed: int = 0,
    selection_fraction: float = 0.5,
    border_keep_probability: float = 0.5,
    partition_method: str = "block",
    partition: Optional[Partition] = None,
    explicit_order: Optional[Sequence[Vertex]] = None,
) -> FilterResult:
    """Run the parallel random-walk control filter.

    Parameters
    ----------
    seed:
        Root seed; each rank receives an independent derived stream, so the
        per-rank walks are uncorrelated and reproducible.
    selection_fraction:
        Stop each local walk after this fraction of the partition's edges have
        been selected (with repetition).  The paper uses one half.
    border_keep_probability:
        Probability that a border edge survives (its "binary random value").
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    if not 0.0 <= border_keep_probability <= 1.0:
        raise ValueError("border_keep_probability must lie in [0, 1]")
    start = time.perf_counter()
    if partition is None:
        if partition_method == "block" and explicit_order is not None:
            partition = partition_graph(graph, n_partitions, method="block", order=explicit_order)
        else:
            partition = partition_graph(graph, n_partitions, method=partition_method)

    rngs = rank_rngs(seed, partition.n_parts + 1)
    border_rng = rngs[-1]

    kept_edges: list[Edge] = []
    works: list[RankWork] = []
    for rank in range(partition.n_parts):
        part_graph = partition.part_subgraph(rank)
        edges, selections = random_walk_edges(part_graph, rngs[rank], selection_fraction)
        kept_edges.extend(edges)
        works.append(
            RankWork(
                edges_examined=selections,
                chordality_checks=0,
                border_edges=len(partition.border_edges_of(rank)),
                messages=0,
                items_sent=0,
                max_degree=max(part_graph.max_degree(), 1),
            )
        )

    accepted_border: list[Edge] = []
    for e in partition.border_edges:
        if border_rng.random() < border_keep_probability:
            accepted_border.append(e)
    kept = list(dict.fromkeys(kept_edges + accepted_border))
    filtered = graph.spanning_subgraph(kept)
    wall = time.perf_counter() - start

    result = FilterResult(
        graph=filtered,
        original=graph,
        method="random_walk",
        ordering=None,
        n_partitions=partition.n_parts,
        partition_method=partition_method,
        border_edges=list(partition.border_edges),
        accepted_border_edges=accepted_border,
        duplicate_border_edges=0,
        rank_work=works,
        wall_time=wall,
        extra={
            "seed": seed,
            "selection_fraction": selection_fraction,
            "border_keep_probability": border_keep_probability,
        },
    )
    result.compute_simulated_time(with_communication=False)
    return result
