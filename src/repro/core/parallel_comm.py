"""Parallel chordal sampling *with* border-edge communication (baseline).

This is the authors' earlier algorithm (HPCS'11 / ICCS'11, summarised in
Section III.A of the paper), reimplemented here as the comparison baseline for
the scalability study:

1. Partition the network into ``P`` parts; each rank extracts the maximal
   chordal subgraph of its internal edges.
2. For every pair of ranks that share border edges, one rank is designated the
   **sender** and the other the **receiver** of those mutual border edges
   (by convention the lower rank sends to the higher rank).
3. The receiver decides which of the received border edges can be *retained
   while maintaining the chordality of its own subgraph*; it inserts the
   accepted edges into its local view and reports them in the merged result.
   The sender never learns which edges were accepted — which is exactly why a
   few long cycles can appear on the sender's side ("quasi-chordal
   subgraphs").

The communication volume per processor grows with the number of border edges
``b`` and the receiver-side admission work is O(b²/d), which is the term that
makes this variant lose scalability on small graphs with many processors
(paper Figure 10, YNG at 32+ processors).

**Index-native pipeline.**  As in the no-communication sampler, the graph is
converted to CSR once; ordering, partitioning, per-rank subgraphs and the
receiver-side two-pair admission test all run on ``int64`` indices (the
mutable local view is a plain ``dict[int, set[int]]``), and the merged edge
set is mapped back to labels exactly once.  Mutual border-edge lists are
sorted by the ``repr`` of their label form at the boundary so receivers admit
candidates in the identical sequence as the label-level pipeline — admission
is order-dependent, and the filter's output must not drift.  The label-level
:func:`receiver_admit_border_edges` is retained as the behavioural reference.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.graph import Graph, edge_key
from ..graph.partition import Partition
from ..parallel.comm import SimComm
from ..parallel.runner import (
    _record_event,
    available_backends,
    pop_supervision_events,
    run_spmd,
    supervision_policy,
)
from ..parallel.shm import ArenaError, arena_scope, owned_arena
from ..parallel.timing import RankWork
from .chordal import chordal_subgraph_edge_indices, edge_insertion_preserves_chordality
from .parallel_nocomm import resolve_index_partition
from .results import FilterResult
from .sequential import priority_from_permutation, resolve_order_indices

__all__ = [
    "parallel_chordal_comm_filter",
    "receiver_admit_border_edges",
    "receiver_admit_border_edges_indices",
]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]
IndexEdge = tuple[int, int]

_BORDER_TAG = 7


def receiver_admit_border_edges(
    local_graph: Graph, candidate_edges: Sequence[Edge]
) -> tuple[list[Edge], int]:
    """Admit candidate border edges one at a time while keeping ``local_graph`` chordal.

    ``local_graph`` is mutated: every accepted edge (and any previously unseen
    endpoint) is inserted so later candidates are checked against the updated
    subgraph.  Returns the accepted edges and the number of chordality checks
    performed (for the cost model).  This is the label-level reference; the
    filter's rank function runs :func:`receiver_admit_border_edges_indices`.
    """
    accepted: list[Edge] = []
    checks = 0
    for u, v in candidate_edges:
        checks += 1
        if local_graph.has_edge(u, v):
            continue
        if edge_insertion_preserves_chordality(local_graph, u, v):
            local_graph.add_edge(u, v)
            accepted.append(edge_key(u, v))
    return accepted, checks


# ----------------------------------------------------------------------
# index-native admission
# ----------------------------------------------------------------------
def _insertion_preserves_chordality_indices(
    adj: dict[int, set[int]], u: int, v: int
) -> bool:
    """Two-pair test on an int adjacency dict (mirror of the label version).

    For non-adjacent ``u``/``v`` of a chordal graph, inserting ``{u, v}``
    keeps it chordal iff ``u`` and ``v`` are disconnected once the common
    neighbourhood is removed.  Endpoints absent from ``adj`` are isolated —
    always safe.
    """
    au = adj.get(u)
    av = adj.get(v)
    if au is None or av is None:
        return True
    if v in au:
        return True
    common = au & av
    seen = {u} | common
    stack = [u]
    while stack:
        x = stack.pop()
        for y in adj[x]:
            if y == v:
                return False
            if y not in seen:
                seen.add(y)
                stack.append(y)
    return True


def receiver_admit_border_edges_indices(
    adj: dict[int, set[int]], candidate_edges: Sequence[IndexEdge]
) -> tuple[list[IndexEdge], int]:
    """Index-native receiver admission; mutates ``adj`` like the label version.

    ``adj`` maps vertex index → neighbour set for the rank's current chordal
    view; accepted candidates are inserted (creating unseen endpoints) so the
    admission sequence matches :func:`receiver_admit_border_edges` decision
    for decision.
    """
    accepted: list[IndexEdge] = []
    checks = 0
    for u, v in candidate_edges:
        checks += 1
        nbrs = adj.get(u)
        if nbrs is not None and v in nbrs:
            continue
        if _insertion_preserves_chordality_indices(adj, u, v):
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
            accepted.append((u, v) if u < v else (v, u))
    return accepted, checks


def _rank_function(
    comm: SimComm,
    sub_indptr: np.ndarray,
    sub_indices: np.ndarray,
    part_idx: np.ndarray,
    border_by_peer: dict[int, list[IndexEdge]],
    local_priority: Optional[np.ndarray],
    strict_order: bool,
) -> dict:
    """SPMD body executed by every rank of the with-communication sampler.

    Runs entirely on vertex indices: the local DSW kernel on the sliced CSR
    arrays, then peer-wise exchange of mutual border edges (lower rank sends,
    higher rank receives and admits with the int two-pair test).
    """
    k = int(part_idx.shape[0])
    sub = CSRGraph(sub_indptr, sub_indices, labels=range(k))
    pairs = chordal_subgraph_edge_indices(sub, priority=local_priority, strict_order=strict_order)
    part_list = part_idx.tolist()
    local_edges: list[IndexEdge] = []
    # Mutable view of this rank's accepted subgraph for admission tests.
    local_view: dict[int, set[int]] = {i: set() for i in part_list}
    for i, j in pairs:
        gi, gj = part_list[i], part_list[j]
        local_edges.append((gi, gj) if gi < gj else (gj, gi))
        local_view[gi].add(gj)
        local_view[gj].add(gi)

    work = RankWork(
        edges_examined=sub.n_edges,
        chordality_checks=sub.degree_sum(),
        border_edges=sum(len(v) for v in border_by_peer.values()),
        messages=0,
        items_sent=0,
        max_degree=max(sub.max_degree(), 1),
    )

    accepted_border: list[IndexEdge] = []
    # Deterministic peer traversal: lower rank sends, higher rank receives.
    for peer in sorted(border_by_peer):
        mutual = border_by_peer[peer]
        if comm.rank < peer:
            comm.send(mutual, dest=peer, tag=_BORDER_TAG)
            work.messages += 1
            work.items_sent += len(mutual)
        else:
            received = comm.recv(source=peer, tag=_BORDER_TAG)
            admitted, checks = receiver_admit_border_edges_indices(local_view, received)
            work.chordality_checks += checks
            accepted_border.extend(admitted)

    return {
        "local_edges": local_edges,
        "accepted_border": accepted_border,
        "work": work,
    }


def _rank_function_shm(
    comm: SimComm,
    payload: dict,
    rank: int,
    border_by_peer: dict[int, list[IndexEdge]],
    strict_order: bool,
) -> dict:
    """Arena-payload SPMD body: shared buffers in, sliced rank run, arrays out.

    The parent ships ``payload`` as a dict of
    :class:`~repro.parallel.shm.ArenaRef` handles (whole-graph CSR buffers,
    concatenated per-part vertex arrays with offsets, optional priority
    vector); by the time this body runs, the SPMD backend has already
    resolved every ref into a zero-copy read-only view (see
    ``_spmd_process_child``), so ``payload`` arrives as plain arrays here.
    The rank reconstructs its own subgraph from the shared views and then
    executes the identical :func:`_rank_function` protocol, so admission
    decisions (and hence the output edge set) cannot drift.  Edge lists
    return as ``(k, 2)`` arrays.
    """
    arrays = payload
    csr = CSRGraph.from_buffers(arrays["indptr"], arrays["indices"])
    offsets = arrays["parts_offsets"]
    part_idx = arrays["parts_flat"][int(offsets[rank]) : int(offsets[rank + 1])]
    position = arrays.get("position")
    sub = csr.induced_subgraph(part_idx)
    out = _rank_function(
        comm,
        sub.indptr,
        sub.indices,
        part_idx,
        border_by_peer,
        None if position is None else position[part_idx],
        strict_order,
    )
    return {
        "local_edges": np.asarray(out["local_edges"], dtype=np.int64).reshape(-1, 2),
        "accepted_border": np.asarray(out["accepted_border"], dtype=np.int64).reshape(-1, 2),
        "work": out["work"],
    }


def parallel_chordal_comm_filter(
    graph: Graph,
    n_partitions: int,
    ordering: Optional[str] = "natural",
    explicit_order: Optional[Sequence[Vertex]] = None,
    partition_method: str = "block",
    partition: Optional[Partition] = None,
    strict_order: bool = False,
    backend: Optional[str] = None,
) -> FilterResult:
    """Run the with-communication parallel chordal filter (the older baseline).

    Parameters mirror
    :func:`repro.core.parallel_nocomm.parallel_chordal_nocomm_filter`.
    Because the ranks exchange messages the execution runs through
    :func:`repro.parallel.runner.run_spmd`: ``backend=None`` (default) keeps
    the historical choice — threaded SPMD for ``P > 1``, serial for ``P = 1``
    — while ``"process"`` runs each rank on a real core with pickled
    payloads and ``"process-shm"`` additionally shares the graph's buffers
    through a zero-copy arena.  (``"serial"`` works for any ``P`` here: the
    lower-rank-sends-first protocol never receives a message that an earlier
    rank has not already buffered.)  Every backend produces the identical
    kept edge set in the identical admission order.
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    if backend is not None and backend not in available_backends():
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {available_backends()}"
        )
    start = time.perf_counter()
    csr = CSRGraph.from_graph(graph)
    perm, ordering_name = resolve_order_indices(csr, ordering, explicit_order)
    ipart = resolve_index_partition(csr, n_partitions, partition_method, partition, perm)
    position = priority_from_permutation(perm, csr.n_vertices)
    labels = csr.labels
    assignment = ipart.assignment

    # Border edges grouped by (owning rank -> peer rank).  Each mutual list is
    # sorted by the repr of its canonical label form — the exact candidate
    # sequence of the label-level pipeline, on which admission order (and
    # hence the output edge set) depends.
    bu, bv = ipart.border_edges()
    border_by_rank_peer: list[dict[int, list[tuple[str, IndexEdge]]]] = [
        dict() for _ in range(ipart.n_parts)
    ]
    for u, v in zip(bu.tolist(), bv.tolist()):
        pu, pv = int(assignment[u]), int(assignment[v])
        sort_key = repr(edge_key(labels[u], labels[v]))
        border_by_rank_peer[pu].setdefault(pv, []).append((sort_key, (u, v)))
        border_by_rank_peer[pv].setdefault(pu, []).append((sort_key, (u, v)))

    by_peer_per_rank = [
        {
            peer: [e for _, e in sorted(entries)]
            for peer, entries in border_by_rank_peer[rank].items()
        }
        for rank in range(ipart.n_parts)
    ]

    resolved_backend = backend or ("thread" if ipart.n_parts > 1 else "serial")
    rank_values = None
    effective_backend = resolved_backend
    if resolved_backend == "process-shm":
        try:
            # Export the whole graph's buffers once; each rank process
            # receives segment names plus its slice bounds and derives its
            # own subgraph.
            with owned_arena() as arena, arena_scope(arena):
                parts_flat, parts_offsets = ipart.flat_parts()
                payload = arena.export_bundle(
                    {
                        "indptr": csr.indptr,
                        "indices": csr.indices,
                        "parts_flat": parts_flat,
                        "parts_offsets": parts_offsets,
                        "position": position,
                    }
                )
                rank_args = [
                    (payload, rank, by_peer_per_rank[rank], strict_order)
                    for rank in range(ipart.n_parts)
                ]
                report = run_spmd(
                    _rank_function_shm,
                    ipart.n_parts,
                    rank_args=rank_args,
                    backend="process-shm",
                )
            rank_values = [
                {
                    "local_edges": [tuple(e) for e in out["local_edges"].tolist()],
                    "accepted_border": [tuple(e) for e in out["accepted_border"].tolist()],
                    "work": out["work"],
                }
                for out in report.values
            ]
        except (ArenaError, OSError) as exc:
            # The arena substrate failed before (or instead of) the SPMD
            # round — the pickled ``process`` path computes the identical
            # result, so fall back instead of failing the filter.
            if not supervision_policy().degrade:
                raise
            _record_event(
                {
                    "action": "degrade",
                    "entry": "parallel_chordal_comm_filter",
                    "backend": "process-shm",
                    "to": "process",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            effective_backend = "process"
    if rank_values is None:
        rank_args = []
        for rank in range(ipart.n_parts):
            part_idx = ipart.part_indices(rank)
            sub = csr.induced_subgraph(part_idx)
            rank_args.append(
                (
                    sub.indptr,
                    sub.indices,
                    part_idx,
                    by_peer_per_rank[rank],
                    None if position is None else position[part_idx],
                    strict_order,
                )
            )
        report = run_spmd(
            _rank_function, ipart.n_parts, rank_args=rank_args, backend=effective_backend
        )
        rank_values = report.values

    all_local: list[IndexEdge] = []
    accepted_border_idx: list[IndexEdge] = []
    seen_border: set[IndexEdge] = set()
    duplicates = 0
    works: list[RankWork] = []
    for rank_out in rank_values:
        all_local.extend(rank_out["local_edges"])
        works.append(rank_out["work"])
        for e in rank_out["accepted_border"]:
            if e in seen_border:
                duplicates += 1
            else:
                seen_border.add(e)
                accepted_border_idx.append(e)

    # The single index→label mapping of the whole pipeline.
    all_local_edges = [edge_key(labels[i], labels[j]) for i, j in dict.fromkeys(all_local)]
    accepted_border = [edge_key(labels[i], labels[j]) for i, j in accepted_border_idx]
    border_edges = [edge_key(labels[int(u)], labels[int(v)]) for u, v in zip(bu, bv)]

    kept_edges = list(dict.fromkeys(all_local_edges + accepted_border))
    filtered = graph.spanning_subgraph(kept_edges)
    wall = time.perf_counter() - start

    supervision = pop_supervision_events()
    result = FilterResult(
        graph=filtered,
        original=graph,
        method="chordal_comm",
        ordering=ordering_name,
        n_partitions=ipart.n_parts,
        partition_method=partition_method,
        border_edges=border_edges,
        accepted_border_edges=accepted_border,
        duplicate_border_edges=duplicates,
        rank_work=works,
        wall_time=wall,
        extra={
            "strict_order": strict_order,
            "comm_stats": report.total_stats(),
            "comm_stats_per_rank": [r.stats.as_dict() for r in report.results],
            "backend": resolved_backend,
            # Supervision events (retries/degrades) ride in ``extra`` only:
            # the canonical filter payload excludes ``extra``, so a faulted
            # run that recovered stays byte-identical to a clean one.
            **({"supervision": supervision} if supervision else {}),
        },
    )
    result.compute_simulated_time(with_communication=True)
    return result
