"""Parallel chordal sampling *with* border-edge communication (baseline).

This is the authors' earlier algorithm (HPCS'11 / ICCS'11, summarised in
Section III.A of the paper), reimplemented here as the comparison baseline for
the scalability study:

1. Partition the network into ``P`` parts; each rank extracts the maximal
   chordal subgraph of its internal edges.
2. For every pair of ranks that share border edges, one rank is designated the
   **sender** and the other the **receiver** of those mutual border edges
   (by convention the lower rank sends to the higher rank).
3. The receiver decides which of the received border edges can be *retained
   while maintaining the chordality of its own subgraph*; it inserts the
   accepted edges into its local view and reports them in the merged result.
   The sender never learns which edges were accepted — which is exactly why a
   few long cycles can appear on the sender's side ("quasi-chordal
   subgraphs").

The communication volume per processor grows with the number of border edges
``b`` and the receiver-side admission work is O(b²/d), which is the term that
makes this variant lose scalability on small graphs with many processors
(paper Figure 10, YNG at 32+ processors).
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence
from typing import Optional

from ..graph.csr import CSRGraph
from ..graph.graph import Graph, edge_key
from ..graph.ordering import get_ordering
from ..graph.partition import Partition, partition_graph
from ..parallel.comm import SimComm
from ..parallel.runner import run_spmd
from ..parallel.timing import RankWork
from .chordal import chordal_edges_from_csr, edge_insertion_preserves_chordality
from .results import FilterResult

__all__ = ["parallel_chordal_comm_filter", "receiver_admit_border_edges"]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

_BORDER_TAG = 7


def receiver_admit_border_edges(
    local_graph: Graph, candidate_edges: Sequence[Edge]
) -> tuple[list[Edge], int]:
    """Admit candidate border edges one at a time while keeping ``local_graph`` chordal.

    ``local_graph`` is mutated: every accepted edge (and any previously unseen
    endpoint) is inserted so later candidates are checked against the updated
    subgraph.  Returns the accepted edges and the number of chordality checks
    performed (for the cost model).
    """
    accepted: list[Edge] = []
    checks = 0
    for u, v in candidate_edges:
        checks += 1
        if local_graph.has_edge(u, v):
            continue
        if edge_insertion_preserves_chordality(local_graph, u, v):
            local_graph.add_edge(u, v)
            accepted.append(edge_key(u, v))
    return accepted, checks


def _rank_function(
    comm: SimComm,
    part_graph: Graph,
    part_vertices: list[Vertex],
    border_by_peer: dict[int, list[Edge]],
    order: Optional[list[Vertex]],
    strict_order: bool,
) -> dict:
    """SPMD body executed by every rank of the with-communication sampler."""
    # One CSR conversion per rank: the DSW kernel runs int-indexed and the
    # work counters come from the same view (labels outside this partition
    # are dropped at the CSR boundary).
    csr = CSRGraph.from_graph(part_graph)
    local_edges = chordal_edges_from_csr(csr, order=order, strict_order=strict_order)

    work = RankWork(
        edges_examined=csr.n_edges,
        chordality_checks=csr.degree_sum(),
        border_edges=sum(len(v) for v in border_by_peer.values()),
        messages=0,
        items_sent=0,
        max_degree=max(csr.max_degree(), 1),
    )

    # Build a mutable view of this rank's accepted subgraph for admission tests.
    local_view = Graph(edges=local_edges, vertices=part_vertices)

    accepted_border: list[Edge] = []
    # Deterministic peer traversal: lower rank sends, higher rank receives.
    peers = sorted(border_by_peer)
    for peer in peers:
        mutual = sorted(border_by_peer[peer], key=repr)
        if not mutual:
            # Still participate in the exchange so message counts stay symmetric.
            pass
        if comm.rank < peer:
            comm.send(mutual, dest=peer, tag=_BORDER_TAG)
            work.messages += 1
            work.items_sent += len(mutual)
        else:
            received = comm.recv(source=peer, tag=_BORDER_TAG)
            admitted, checks = receiver_admit_border_edges(local_view, received)
            work.chordality_checks += checks
            accepted_border.extend(admitted)

    return {
        "local_edges": local_edges,
        "accepted_border": accepted_border,
        "work": work,
    }


def parallel_chordal_comm_filter(
    graph: Graph,
    n_partitions: int,
    ordering: Optional[str] = "natural",
    explicit_order: Optional[Sequence[Vertex]] = None,
    partition_method: str = "block",
    partition: Optional[Partition] = None,
    strict_order: bool = False,
) -> FilterResult:
    """Run the with-communication parallel chordal filter (the older baseline).

    Parameters mirror
    :func:`repro.core.parallel_nocomm.parallel_chordal_nocomm_filter`; the
    execution always uses the threaded SPMD backend because ranks exchange
    messages.
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    start = time.perf_counter()
    order: Optional[list[Vertex]]
    if explicit_order is not None:
        order = list(explicit_order)
        ordering_name = ordering or "explicit"
    elif ordering is not None:
        order = get_ordering(ordering)(graph)
        ordering_name = ordering
    else:
        order = None
        ordering_name = None

    if partition is None:
        if partition_method == "block" and order is not None:
            partition = partition_graph(graph, n_partitions, method="block", order=order)
        else:
            partition = partition_graph(graph, n_partitions, method=partition_method)

    # border edges grouped by (owning rank -> peer rank)
    border_by_rank_peer: list[dict[int, list[Edge]]] = [dict() for _ in range(partition.n_parts)]
    for u, v in partition.border_edges:
        pu, pv = partition.part_of(u), partition.part_of(v)
        border_by_rank_peer[pu].setdefault(pv, []).append(edge_key(u, v))
        border_by_rank_peer[pv].setdefault(pu, []).append(edge_key(u, v))

    rank_args = []
    for rank in range(partition.n_parts):
        rank_args.append(
            (
                partition.part_subgraph(rank),
                partition.parts[rank],
                border_by_rank_peer[rank],
                order,
                strict_order,
            )
        )

    backend = "thread" if partition.n_parts > 1 else "serial"
    report = run_spmd(_rank_function, partition.n_parts, rank_args=rank_args, backend=backend)

    all_local: list[Edge] = []
    accepted_border: list[Edge] = []
    seen_border: set[Edge] = set()
    duplicates = 0
    works: list[RankWork] = []
    for rank_out, stats in zip(report.values, (r.stats for r in report.results)):
        all_local.extend(rank_out["local_edges"])
        works.append(rank_out["work"])
        for e in rank_out["accepted_border"]:
            if e in seen_border:
                duplicates += 1
            else:
                seen_border.add(e)
                accepted_border.append(e)

    kept_edges = list(dict.fromkeys(all_local + accepted_border))
    filtered = graph.spanning_subgraph(kept_edges)
    wall = time.perf_counter() - start

    result = FilterResult(
        graph=filtered,
        original=graph,
        method="chordal_comm",
        ordering=ordering_name,
        n_partitions=partition.n_parts,
        partition_method=partition_method,
        border_edges=list(partition.border_edges),
        accepted_border_edges=accepted_border,
        duplicate_border_edges=duplicates,
        rank_work=works,
        wall_time=wall,
        extra={
            "strict_order": strict_order,
            "comm_stats": report.total_stats(),
            "backend": backend,
        },
    )
    result.compute_simulated_time(with_communication=True)
    return result
