"""The paper's primary contribution: chordal-graph-based adaptive sampling.

Sub-modules
-----------
``chordal``
    chordality recognition and the Dearing–Shier–Warner maximal chordal
    subgraph construction.
``sequential``
    single-processor chordal and random-walk filters.
``parallel_nocomm``
    the paper's communication-free parallel chordal sampler.
``parallel_comm``
    the earlier with-communication baseline.
``random_walk``
    the parallel random-walk control filter.
``sampling``
    the unified :func:`apply_filter` front-end and filter registry.
``results``
    :class:`FilterResult` provenance container.
"""

from .chordal import (
    augment_to_maximal,
    chordal_subgraph_edges,
    edge_insertion_preserves_chordality,
    fill_in_edges,
    find_simplicial_vertex,
    is_chordal,
    is_maximal_chordal_subgraph,
    is_perfect_elimination_ordering,
    is_simplicial,
    maximal_chordal_subgraph,
    maximum_cardinality_search,
)
from .parallel_comm import (
    parallel_chordal_comm_filter,
    receiver_admit_border_edges,
    receiver_admit_border_edges_indices,
)
from .quasi import (
    QuasiChordalReport,
    chordality_deficit,
    long_cycle_census,
    quasi_chordal_report,
)
from .parallel_nocomm import (
    admit_border_edges_no_communication,
    admit_border_edges_no_communication_indices,
    local_chordal_phase,
    parallel_chordal_nocomm_filter,
)
from .random_walk import parallel_random_walk_filter, random_walk_edges
from .results import FilterResult
from .sampling import FILTERS, apply_filter, filter_names
from .sequential import sequential_chordal_filter, sequential_random_walk_filter

__all__ = [
    # chordal kernels
    "is_chordal",
    "is_simplicial",
    "find_simplicial_vertex",
    "is_perfect_elimination_ordering",
    "maximum_cardinality_search",
    "fill_in_edges",
    "chordal_subgraph_edges",
    "maximal_chordal_subgraph",
    "augment_to_maximal",
    "is_maximal_chordal_subgraph",
    "edge_insertion_preserves_chordality",
    # filters
    "sequential_chordal_filter",
    "sequential_random_walk_filter",
    "parallel_chordal_nocomm_filter",
    "parallel_chordal_comm_filter",
    "parallel_random_walk_filter",
    "local_chordal_phase",
    "admit_border_edges_no_communication",
    "admit_border_edges_no_communication_indices",
    "receiver_admit_border_edges",
    "receiver_admit_border_edges_indices",
    "random_walk_edges",
    # quasi-chordal analysis
    "QuasiChordalReport",
    "quasi_chordal_report",
    "chordality_deficit",
    "long_cycle_census",
    # API
    "FilterResult",
    "FILTERS",
    "apply_filter",
    "filter_names",
]
