"""Communication-free parallel maximal chordal subgraph sampling.

This is the paper's improved algorithm (Section III.A, Figure 1):

1. **Partition** the network into ``P`` parts.
2. **Local phase** — every rank extracts the maximal chordal subgraph of the
   edges whose endpoints both lie inside its partition (the *chordal edges*)
   using the Dearing–Shier–Warner construction; edges crossing partitions are
   set aside as *border edges*.
3. **Border phase (no communication)** — instead of exchanging border edges,
   each rank simply compares them against its own chordal edges: a *pair* of
   border edges sharing an external endpoint is admitted when the third edge
   closing the triangle is one of the rank's local chordal edges.  In the
   paper's Figure 1, edges (4,6) and (4,8) are admitted by the bottom
   partition because (6,8) is a chordal edge there, whereas (2,6) and (4,6)
   are rejected by the top partition because (2,4) is not.

Because two ranks can admit the same border edge independently, duplicates
may appear; they are removed during the (sequential) merge, and their count is
reported — the paper bounds it by ``b``, the number of border edges.  Border
edges can also close a few long cycles across partitions, producing a
*quasi-chordal subgraph* (QCS); an optional repair pass deletes border edges
until no fundamental cycle longer than a triangle survives among them.

**Index-native pipeline.**  The filter converts the graph to CSR exactly once;
ordering (:func:`repro.graph.ordering.ordering_indices`), partitioning
(:class:`repro.graph.partition.IndexPartition`), per-rank subgraphs
(:meth:`CSRGraph.induced_subgraph` array slicing) and border admission all run
on ``int64`` vertex indices.  Rank payloads are plain numpy arrays — cheap to
pickle for the ``process`` backend — and labels reappear exactly once, when
the merged edge set is mapped back at the end.  The label-level helpers
(:func:`local_chordal_phase`, :func:`admit_border_edges_no_communication`)
are retained as the behavioural reference; the property suite pins the index
path to them.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.cycles import cycle_basis_sizes
from ..graph.graph import Graph, edge_key
from ..graph.partition import (
    IndexPartition,
    Partition,
    block_partition_indices,
    index_partition_graph,
)
from ..parallel.runner import (
    _record_event,
    available_backends,
    parallel_map,
    pop_supervision_events,
    supervision_policy,
)
from ..parallel.shm import ArenaError, attach, owned_arena
from ..parallel.timing import RankWork
from .chordal import chordal_edges_from_csr, chordal_subgraph_edge_indices
from .results import FilterResult
from .sequential import priority_from_permutation, resolve_order_indices

__all__ = [
    "parallel_chordal_nocomm_filter",
    "local_chordal_phase",
    "admit_border_edges_no_communication",
    "admit_border_edges_no_communication_indices",
    "admit_border_edges_no_communication_arrays",
]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]
IndexEdge = tuple[int, int]


# ----------------------------------------------------------------------
# label-level reference helpers (seed semantics, kept for tests / compat)
# ----------------------------------------------------------------------
def local_chordal_phase(
    part_graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
    strict_order: bool = False,
) -> tuple[list[Edge], RankWork]:
    """Run the local (per-partition) chordal extraction and return (edges, work).

    ``order`` is the global vertex ordering (labels outside this partition are
    ignored by the CSR boundary); the work counters feed the scalability cost
    model.  This is the label-level reference path — the filter itself runs
    :func:`_rank_task_indices` on sliced CSR arrays instead.
    """
    csr = CSRGraph.from_graph(part_graph)
    edges = chordal_edges_from_csr(csr, order=order, strict_order=strict_order)
    work = RankWork(
        edges_examined=csr.n_edges,
        chordality_checks=csr.degree_sum(),
        border_edges=0,
        messages=0,
        items_sent=0,
        max_degree=max(csr.max_degree(), 1),
    )
    return edges, work


def admit_border_edges_no_communication(
    rank_border_edges: Sequence[Edge],
    part_vertices: set[Vertex],
    local_chordal_edges: set[Edge],
) -> list[Edge]:
    """Apply the triangle rule to one rank's border edges (label-level reference).

    ``rank_border_edges`` are the border edges with at least one endpoint in
    this rank's partition.  For every *external* vertex ``x`` the rank looks at
    the border edges ``(x, b)`` with ``b`` inside the partition; a pair
    ``(x, b1)``, ``(x, b2)`` is admitted when ``(b1, b2)`` is one of the rank's
    local chordal edges.  Only local information is consulted — hence no
    communication.
    """
    # external endpoint -> internal endpoints reachable over border edges
    by_external: dict[Vertex, list[Vertex]] = {}
    for u, v in rank_border_edges:
        if u in part_vertices and v not in part_vertices:
            by_external.setdefault(v, []).append(u)
        elif v in part_vertices and u not in part_vertices:
            by_external.setdefault(u, []).append(v)
        # edges with both endpoints outside the partition are not this rank's business
    # Adjacency view of the local chordal edges: the O(b²) pair loop below
    # then tests membership directly instead of canonicalising an edge key
    # for every candidate pair.
    chordal_adj: dict[Vertex, set[Vertex]] = {}
    for a, b in local_chordal_edges:
        chordal_adj.setdefault(a, set()).add(b)
        chordal_adj.setdefault(b, set()).add(a)
    empty: set[Vertex] = set()
    admitted: set[Edge] = set()
    for external, internals in by_external.items():
        n = len(internals)
        if n < 2:
            continue
        for i in range(n):
            a = internals[i]
            a_adj = chordal_adj.get(a, empty)
            for j in range(i + 1, n):
                b = internals[j]
                if b in a_adj:
                    admitted.add(edge_key(external, a))
                    admitted.add(edge_key(external, b))
    return sorted(admitted, key=repr)


# ----------------------------------------------------------------------
# index-native rank path
# ----------------------------------------------------------------------
def admit_border_edges_no_communication_indices(
    border_u: np.ndarray,
    border_v: np.ndarray,
    u_internal: np.ndarray,
    v_internal: np.ndarray,
    chordal_adj: dict[int, set[int]],
) -> list[IndexEdge]:
    """Triangle-rule border admission on vertex indices.

    ``border_u/border_v`` are this rank's border edges (global indices);
    ``u_internal/v_internal`` are aligned booleans marking which endpoint lies
    inside the partition.  ``chordal_adj`` is the adjacency of the rank's
    local chordal edges.  Returns the admitted edges as sorted canonical
    ``(min, max)`` index pairs — the same edge *set* the label-level
    reference produces, without any ``repr`` canonicalisation.
    """
    by_external: dict[int, list[int]] = {}
    for u, v, ui, vi in zip(border_u.tolist(), border_v.tolist(), u_internal.tolist(), v_internal.tolist()):
        if ui and not vi:
            by_external.setdefault(v, []).append(u)
        elif vi and not ui:
            by_external.setdefault(u, []).append(v)
    admitted: set[IndexEdge] = set()
    for external, internals in by_external.items():
        if len(internals) < 2:
            continue
        internal_set = set(internals)
        for a in internals:
            adj = chordal_adj.get(a)
            if not adj:
                continue
            # every b in internals ∩ adj(a) closes the triangle external-a-b
            for b in internal_set & adj:
                admitted.add((external, a) if external < a else (a, external))
                admitted.add((external, b) if external < b else (b, external))
    return sorted(admitted)


def admit_border_edges_no_communication_arrays(
    border_u: np.ndarray,
    border_v: np.ndarray,
    u_internal: np.ndarray,
    v_internal: np.ndarray,
    chordal_u: np.ndarray,
    chordal_v: np.ndarray,
) -> list[IndexEdge]:
    """Vectorised triangle-rule admission (the production path).

    Same contract as :func:`admit_border_edges_no_communication_indices` with
    the rank's local chordal edges given as aligned index arrays instead of
    an adjacency dict.  The scalar rule — admit the border pair
    ``(x, b1), (x, b2)`` when ``(b1, b2)`` is a local chordal edge — is
    reformulated over packed edge keys: every border pair ``(external e,
    internal i)`` is expanded by ``i``'s chordal neighbours ``j``, and the
    expansion survives when ``(e, j)`` is itself one of the rank's border
    pairs, which closes the triangle ``e–i–j``.  One gather, one
    ``searchsorted`` and one ``unique`` replace the per-external Python pair
    loops; the result is the identical sorted canonical edge list (pinned to
    the scalar reference by the property suite).
    """
    us, vs = _admit_border_keys(
        border_u, border_v, u_internal, v_internal, chordal_u, chordal_v
    )
    return list(zip(us.tolist(), vs.tolist()))


_EMPTY_EDGES = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))


def _admit_border_keys(
    border_u: np.ndarray,
    border_v: np.ndarray,
    u_internal: np.ndarray,
    v_internal: np.ndarray,
    chordal_u: np.ndarray,
    chordal_v: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Array core of the vectorised admission: canonical ``(us, vs)`` sorted."""
    one_internal = u_internal ^ v_internal
    if not one_internal.any() or chordal_u.shape[0] == 0:
        return _EMPTY_EDGES
    ext = np.where(u_internal, border_v, border_u)[one_internal]
    internal = np.where(u_internal, border_u, border_v)[one_internal]
    # Work in a compact id space over the vertices this rank actually sees,
    # so allocations scale with the local part, not the global vertex count
    # (block partitions hand the last rank ids near N).  ``ids`` is sorted,
    # so the compact↔global mapping is monotonic and preserves the
    # lexicographic output order.
    ids = np.unique(np.concatenate([ext, internal, chordal_u, chordal_v]))
    n = int(ids.shape[0])
    ext = np.searchsorted(ids, ext)
    internal = np.searchsorted(ids, internal)
    chordal_u = np.searchsorted(ids, chordal_u)
    chordal_v = np.searchsorted(ids, chordal_v)
    packed_border = np.sort(ext * n + internal)
    # Chordal adjacency in CSR form over the packed id range (both
    # orientations), built with one bincount + argsort.
    src = np.concatenate([chordal_u, chordal_v])
    dst = np.concatenate([chordal_v, chordal_u])
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    adj_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=adj_indptr[1:])
    starts = adj_indptr[internal]
    counts = adj_indptr[internal + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_EDGES
    row_base = np.zeros(internal.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=row_base[1:])
    take = np.repeat(starts - row_base, counts) + np.arange(total, dtype=np.int64)
    nbrs = dst[take]
    e_exp = np.repeat(ext, counts)
    i_exp = np.repeat(internal, counts)
    cand = e_exp * n + nbrs
    pos = np.searchsorted(packed_border, cand)
    pos_clip = np.minimum(pos, packed_border.shape[0] - 1)
    hit = (pos < packed_border.shape[0]) & (packed_border[pos_clip] == cand)
    if not hit.any():
        return _EMPTY_EDGES
    eh, ih, nh = e_exp[hit], i_exp[hit], nbrs[hit]
    first = np.minimum(eh, ih) * n + np.maximum(eh, ih)
    second = np.minimum(eh, nh) * n + np.maximum(eh, nh)
    keys = np.unique(np.concatenate([first, second]))
    return ids[keys // n], ids[keys % n]


def _rank_task_core(
    sub_indptr: np.ndarray,
    sub_indices: np.ndarray,
    part_idx: np.ndarray,
    border_u: np.ndarray,
    border_v: np.ndarray,
    u_internal: np.ndarray,
    v_internal: np.ndarray,
    local_priority: Optional[np.ndarray],
    strict_order: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, RankWork]:
    """Array core of the per-rank computation (local phase + admission).

    Returns the kept local chordal edges and the admitted border edges as
    two aligned canonical index array pairs, plus the work counters.  The
    local edges are in kernel acceptance order, the admitted edges sorted —
    the exact sequences the merge depends on.
    """
    k = int(part_idx.shape[0])
    sub = CSRGraph(sub_indptr, sub_indices, labels=range(k))
    pairs = chordal_subgraph_edge_indices(sub, priority=local_priority, strict_order=strict_order)
    m = len(pairs)
    if m:
        flat = np.fromiter(
            (x for pair in pairs for x in pair), dtype=np.int64, count=2 * m
        )
        endpoints = part_idx[flat].reshape(-1, 2)
        chordal_u = np.minimum(endpoints[:, 0], endpoints[:, 1])
        chordal_v = np.maximum(endpoints[:, 0], endpoints[:, 1])
    else:
        chordal_u, chordal_v = _EMPTY_EDGES
    admitted_u, admitted_v = _admit_border_keys(
        border_u, border_v, u_internal, v_internal, chordal_u, chordal_v
    )
    n_border = int(border_u.shape[0])
    work = RankWork(
        # Admission examines each border edge; count them as extra examined
        # edges for the cost model (mirrors the label-level pipeline).
        edges_examined=sub.n_edges + n_border,
        chordality_checks=sub.degree_sum(),
        border_edges=n_border,
        messages=0,
        items_sent=0,
        max_degree=max(sub.max_degree(), 1),
    )
    return chordal_u, chordal_v, admitted_u, admitted_v, work


def _rank_task_indices(
    sub_indptr: np.ndarray,
    sub_indices: np.ndarray,
    part_idx: np.ndarray,
    border_u: np.ndarray,
    border_v: np.ndarray,
    u_internal: np.ndarray,
    v_internal: np.ndarray,
    local_priority: Optional[np.ndarray],
    strict_order: bool,
) -> tuple[list[IndexEdge], list[IndexEdge], RankWork]:
    """The full per-rank computation on CSR arrays (local phase + admission).

    All arguments are numpy arrays (plus one bool), so the ``process``
    backend pickles compact buffers instead of ``Graph`` objects.  Returned
    edges are canonical global-index pairs.
    """
    cu, cv, au, av, work = _rank_task_core(
        sub_indptr,
        sub_indices,
        part_idx,
        border_u,
        border_v,
        u_internal,
        v_internal,
        local_priority,
        strict_order,
    )
    local_edges = list(zip(cu.tolist(), cv.tolist()))
    admitted = list(zip(au.tolist(), av.tolist()))
    return local_edges, admitted, work


@dataclass(frozen=True)
class _ShmPayload:
    """The arena-resident rank payload of the no-communication sampler.

    A handful of :class:`~repro.parallel.shm.ArenaRef` handles naming the
    *whole* graph's shared buffers — CSR pair, partition assignment,
    concatenated per-part vertex arrays with offsets, the global border-edge
    arrays and the optional ordering-priority vector.  Deliberately a frozen
    dataclass rather than a dict: the generic
    :func:`~repro.parallel.shm.resolve_payload` leaves it untouched, so the
    rank task sees the refs themselves and can use the (hashable) payload as
    its per-graph memo key.
    """

    indptr: "Any"
    indices: "Any"
    assignment: "Any"
    parts_flat: "Any"
    parts_offsets: "Any"
    border_u: "Any"
    border_v: "Any"
    position: "Any"


#: Worker-side memo of state derived from an arena payload: the attached CSR
#: view, the border endpoints' part assignments, and — filled in lazily —
#: each rank's fully sliced task inputs.  A pool worker executes many ranks
#: of the same graph back to back (and a batch scale-group re-runs the same
#: payload spec after spec: the ambient arena's content dedup hands out
#: identical refs for rebuilt-but-equal buffers), so the per-graph part is
#: derived once per graph and the per-rank slices once per (graph, rank) —
#: a memoisation that payload *names* make possible and payload *bytes*
#: (the pickled path) cannot have.  Bounded to the last few payloads.
_RankInputs = tuple
_SHM_GRAPH_MEMO: "dict[_ShmPayload, tuple[CSRGraph, np.ndarray, np.ndarray, dict[int, _RankInputs]]]" = {}
_SHM_GRAPH_MEMO_MAX = 2


def _shm_graph_state(
    payload: _ShmPayload,
) -> tuple[CSRGraph, np.ndarray, np.ndarray, dict[int, _RankInputs]]:
    """Attach (or recall) the shared graph, border part vectors, rank cache."""
    hit = _SHM_GRAPH_MEMO.get(payload)
    if hit is not None:
        return hit
    csr = CSRGraph.from_buffers(attach(payload.indptr), attach(payload.indices))
    assignment = attach(payload.assignment)
    state = (
        csr,
        assignment[attach(payload.border_u)],
        assignment[attach(payload.border_v)],
        {},
    )
    while len(_SHM_GRAPH_MEMO) >= _SHM_GRAPH_MEMO_MAX:
        _SHM_GRAPH_MEMO.pop(next(iter(_SHM_GRAPH_MEMO)))
    _SHM_GRAPH_MEMO[payload] = state
    return state


def _rank_task_shm(
    payload: _ShmPayload,
    rank: int,
    strict_order: bool,
) -> tuple[np.ndarray, np.ndarray, RankWork]:
    """Arena-payload rank task: attach shared buffers, slice, run, return arrays.

    The rank derives its own subgraph and border set from the shared
    read-only views — the per-rank slicing that the pickled-payload path
    performs in the parent — and calls the same :func:`_rank_task_core`,
    so the admitted edge sequence is bit-identical.  The sliced inputs are
    memoised per (payload, rank): re-running the same payload (a batch
    scale-group, a benchmark repeat) skips straight to the kernel.  Results
    travel back as compact ``(k, 2)`` index arrays instead of tuple lists.
    """
    csr, u_part, v_part, rank_cache = _shm_graph_state(payload)
    inputs = rank_cache.get(rank)
    if inputs is None:
        offsets = attach(payload.parts_offsets)
        part_idx = attach(payload.parts_flat)[int(offsets[rank]) : int(offsets[rank + 1])]
        # The shared border arrays are the already-masked subsequence of the
        # graph's edge_array(); selecting this rank's rows preserves that
        # order, so the admission scan sees the same sequence as the pickled
        # path.
        touches = (u_part == rank) | (v_part == rank)
        bu, bv = attach(payload.border_u)[touches], attach(payload.border_v)[touches]
        position = None if payload.position is None else attach(payload.position)
        sub = csr.induced_subgraph(part_idx)
        inputs = (
            sub.indptr,
            sub.indices,
            part_idx,
            bu,
            bv,
            u_part[touches] == rank,
            v_part[touches] == rank,
            None if position is None else position[part_idx],
        )
        rank_cache[rank] = inputs
    cu, cv, au, av, work = _rank_task_core(*inputs, strict_order)
    return np.stack([cu, cv], axis=1), np.stack([au, av], axis=1), work


def _run_ranks_shm(
    csr: CSRGraph,
    ipart: IndexPartition,
    position: Optional[np.ndarray],
    strict_order: bool,
    processes: Optional[int],
) -> list[tuple[list[IndexEdge], list[IndexEdge], RankWork]]:
    """Fan the ranks out over the process pool with arena-backed payloads.

    The graph's buffers are exported to shared memory once (into the ambient
    :func:`~repro.parallel.shm.arena_scope` arena when one is active — the
    batch engine opens one per scale-group — else into a private arena
    unlinked before returning); every rank's payload is then a handful of
    segment names plus its slice bounds.
    """
    with owned_arena() as arena:
        parts_flat, parts_offsets = ipart.flat_parts()
        border_u, border_v = ipart.border_edges()
        payload = _ShmPayload(
            **arena.export_bundle(
                {
                    "indptr": csr.indptr,
                    "indices": csr.indices,
                    "assignment": ipart.assignment,
                    "parts_flat": parts_flat,
                    "parts_offsets": parts_offsets,
                    "border_u": border_u,
                    "border_v": border_v,
                    "position": position,
                }
            )
        )
        items = [(payload, rank, strict_order) for rank in range(ipart.n_parts)]
        outputs = parallel_map(_rank_task_shm, items, backend="process", processes=processes)
    return [
        (
            list(zip(local[:, 0].tolist(), local[:, 1].tolist())),
            list(zip(admitted[:, 0].tolist(), admitted[:, 1].tolist())),
            work,
        )
        for local, admitted, work in outputs
    ]


def resolve_index_partition(
    csr: CSRGraph,
    n_partitions: int,
    partition_method: str,
    partition: Optional[Partition],
    perm: Optional[np.ndarray],
) -> IndexPartition:
    """Choose the index partition for a parallel filter run.

    An explicit label-level ``partition`` wins (converted to its index view);
    otherwise a block partition follows the ordering permutation when one was
    requested, and any other method runs index-native directly.
    """
    if partition is not None:
        return IndexPartition.from_partition(partition, csr)
    if partition_method == "block" and perm is not None:
        return block_partition_indices(csr, n_partitions, order=perm)
    return index_partition_graph(csr, n_partitions, method=partition_method)


def parallel_chordal_nocomm_filter(
    graph: Graph,
    n_partitions: int,
    ordering: Optional[str] = "natural",
    explicit_order: Optional[Sequence[Vertex]] = None,
    partition_method: str = "block",
    partition: Optional[Partition] = None,
    strict_order: bool = False,
    repair_cycles: bool = False,
    backend: Optional[str] = None,
    processes: Optional[int] = None,
) -> FilterResult:
    """Run the communication-free parallel chordal filter.

    Parameters
    ----------
    graph:
        The network to sample.
    n_partitions:
        Number of simulated processors ``P``.
    ordering / explicit_order:
        Vertex ordering used both to lay out the block partition and to drive
        every rank's local Dearing–Shier–Warner traversal.
    partition_method:
        Partitioner name (``block``, ``hash``, ``bfs``, ``greedy``); ignored
        when an explicit ``partition`` is supplied.
    repair_cycles:
        Run the optional cycle-repair pass on the border-edge-induced subgraph
        (deletes admitted border edges until no fundamental cycle among them
        survives), as discussed in Section III.A.
    backend:
        One of :func:`repro.parallel.runner.available_backends`; ``None``
        (the default) selects this filter's own default, ``"serial"``.  The
        ranks are independent, so ``"process"`` fans them out over
        :func:`repro.parallel.parallel_map` with pickled CSR-array payloads,
        while ``"process-shm"`` exports the graph's buffers to a
        shared-memory arena once and ships each rank only segment names plus
        its slice bounds (each rank derives its own subgraph from the shared
        views).  All backends produce the identical kept edge set in the
        identical admission order.
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    backend = backend or "serial"
    if backend not in available_backends():
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {available_backends()}"
        )
    start = time.perf_counter()
    csr = CSRGraph.from_graph(graph)
    perm, ordering_name = resolve_order_indices(csr, ordering, explicit_order)
    ipart = resolve_index_partition(csr, n_partitions, partition_method, partition, perm)
    position = priority_from_permutation(perm, csr.n_vertices)

    rank_outputs = None
    effective_backend = backend
    if backend == "process-shm":
        try:
            rank_outputs = _run_ranks_shm(csr, ipart, position, strict_order, processes)
        except (ArenaError, OSError) as exc:
            # The shared-memory substrate failed before any rank ran (arena
            # creation or export) — the pickled ``process`` path computes the
            # identical result, so fall back instead of failing the filter.
            if not supervision_policy().degrade:
                raise
            _record_event(
                {
                    "action": "degrade",
                    "entry": "parallel_chordal_nocomm_filter",
                    "backend": "process-shm",
                    "to": "process",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            effective_backend = "process"
    if rank_outputs is None:
        items = []
        assignment = ipart.assignment
        for rank in range(ipart.n_parts):
            part_idx = ipart.part_indices(rank)
            sub = csr.induced_subgraph(part_idx)
            bu, bv = ipart.border_edges_of(rank)
            items.append(
                (
                    sub.indptr,
                    sub.indices,
                    part_idx,
                    bu,
                    bv,
                    assignment[bu] == rank,
                    assignment[bv] == rank,
                    None if position is None else position[part_idx],
                    strict_order,
                )
            )
        rank_outputs = parallel_map(
            _rank_task_indices, items, backend=effective_backend, processes=processes
        )

    all_local: list[IndexEdge] = []
    works: list[RankWork] = []
    seen_border: set[IndexEdge] = set()
    duplicates = 0
    accepted_border_idx: list[IndexEdge] = []
    for local_edges, admitted, work in rank_outputs:
        all_local.extend(local_edges)
        works.append(work)
        for e in admitted:
            if e in seen_border:
                duplicates += 1
            else:
                seen_border.add(e)
                accepted_border_idx.append(e)

    # The single index→label mapping of the whole pipeline.
    labels = csr.labels
    all_local_edges = [edge_key(labels[i], labels[j]) for i, j in dict.fromkeys(all_local)]
    accepted_border = [edge_key(labels[i], labels[j]) for i, j in accepted_border_idx]
    bu, bv = ipart.border_edges()
    border_edges = [edge_key(labels[int(u)], labels[int(v)]) for u, v in zip(bu, bv)]

    removed_for_cycles: list[Edge] = []
    if repair_cycles and accepted_border:
        accepted_border, removed_for_cycles = _repair_border_cycles(
            all_local_edges, accepted_border
        )

    kept_edges = list(dict.fromkeys(all_local_edges + accepted_border))
    filtered = graph.spanning_subgraph(kept_edges)
    wall = time.perf_counter() - start

    border_subgraph = Graph(edges=accepted_border) if accepted_border else Graph()
    supervision = pop_supervision_events()
    result = FilterResult(
        graph=filtered,
        original=graph,
        method="chordal_nocomm",
        ordering=ordering_name,
        n_partitions=ipart.n_parts,
        partition_method=partition_method,
        border_edges=border_edges,
        accepted_border_edges=accepted_border,
        duplicate_border_edges=duplicates,
        rank_work=works,
        wall_time=wall,
        extra={
            "strict_order": strict_order,
            "repair_cycles": repair_cycles,
            "cycles_removed_edges": removed_for_cycles,
            "border_cycle_sizes": cycle_basis_sizes(border_subgraph),
            "backend": backend,
            # Supervision events (retries/degrades) ride in ``extra`` only:
            # the canonical filter payload excludes ``extra``, so a faulted
            # run that recovered stays byte-identical to a clean one.
            **({"supervision": supervision} if supervision else {}),
        },
    )
    result.compute_simulated_time(with_communication=False)
    return result


def _repair_border_cycles(
    local_edges: Sequence[Edge], accepted_border: Sequence[Edge]
) -> tuple[list[Edge], list[Edge]]:
    """Delete admitted border edges that close cycles longer than a triangle.

    The repair follows the paper's sketch: copy the subgraph induced by the
    border edges (plus the local chordal edges among their endpoints, which
    are protected) to one processor and delete border edges until every
    fundamental cycle in that subgraph is a triangle.
    """
    endpoints: set[Vertex] = set()
    for u, v in accepted_border:
        endpoints.add(u)
        endpoints.add(v)
    protected = [e for e in local_edges if e[0] in endpoints and e[1] in endpoints]
    check_graph = Graph(edges=list(accepted_border) + protected)
    removed: list[Edge] = []
    border_set = set(accepted_border)
    while True:
        sizes = cycle_basis_sizes(check_graph)
        if not sizes or max(sizes) <= 3:
            break
        target = _find_long_cycle_border_edge(check_graph, border_set)
        if target is None:
            break
        check_graph.remove_edge(*target)
        border_set.discard(target)
        removed.append(target)
    kept = [e for e in accepted_border if e not in set(removed)]
    return kept, removed


def _find_long_cycle_border_edge(graph: Graph, border_set: set[Edge]) -> Optional[Edge]:
    """Return a border edge participating in some cycle longer than a triangle."""
    from ..graph.cycles import find_chordless_cycle

    cycle = find_chordless_cycle(graph, min_length=4)
    if cycle is None:
        return None
    n = len(cycle)
    for i in range(n):
        e = edge_key(cycle[i], cycle[(i + 1) % n])
        if e in border_set:
            return e
    # The long cycle consists only of protected local edges; nothing to repair.
    return None
