"""Communication-free parallel maximal chordal subgraph sampling.

This is the paper's improved algorithm (Section III.A, Figure 1):

1. **Partition** the network into ``P`` parts.
2. **Local phase** — every rank extracts the maximal chordal subgraph of the
   edges whose endpoints both lie inside its partition (the *chordal edges*)
   using the Dearing–Shier–Warner construction; edges crossing partitions are
   set aside as *border edges*.
3. **Border phase (no communication)** — instead of exchanging border edges,
   each rank simply compares them against its own chordal edges: a *pair* of
   border edges sharing an external endpoint is admitted when the third edge
   closing the triangle is one of the rank's local chordal edges.  In the
   paper's Figure 1, edges (4,6) and (4,8) are admitted by the bottom
   partition because (6,8) is a chordal edge there, whereas (2,6) and (4,6)
   are rejected by the top partition because (2,4) is not.

Because two ranks can admit the same border edge independently, duplicates
may appear; they are removed during the (sequential) merge, and their count is
reported — the paper bounds it by ``b``, the number of border edges.  Border
edges can also close a few long cycles across partitions, producing a
*quasi-chordal subgraph* (QCS); an optional repair pass deletes border edges
until no fundamental cycle longer than a triangle survives among them.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence
from typing import Optional

from ..graph.csr import CSRGraph
from ..graph.cycles import cycle_basis_sizes
from ..graph.graph import Graph, edge_key
from ..graph.ordering import get_ordering
from ..graph.partition import Partition, partition_graph
from ..parallel.runner import parallel_map
from ..parallel.timing import RankWork
from .chordal import chordal_edges_from_csr
from .results import FilterResult

__all__ = [
    "parallel_chordal_nocomm_filter",
    "local_chordal_phase",
    "admit_border_edges_no_communication",
]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


def local_chordal_phase(
    part_graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
    strict_order: bool = False,
) -> tuple[list[Edge], RankWork]:
    """Run the local (per-partition) chordal extraction and return (edges, work).

    ``order`` is the global vertex ordering (labels outside this partition are
    ignored by the CSR boundary); the work counters feed the scalability cost
    model.  The partition subgraph is converted to CSR once, and both the DSW
    kernel and the counters run on that view.
    """
    csr = CSRGraph.from_graph(part_graph)
    edges = chordal_edges_from_csr(csr, order=order, strict_order=strict_order)
    work = RankWork(
        edges_examined=csr.n_edges,
        chordality_checks=csr.degree_sum(),
        border_edges=0,
        messages=0,
        items_sent=0,
        max_degree=max(csr.max_degree(), 1),
    )
    return edges, work


def admit_border_edges_no_communication(
    rank_border_edges: Sequence[Edge],
    part_vertices: set[Vertex],
    local_chordal_edges: set[Edge],
) -> list[Edge]:
    """Apply the triangle rule to one rank's border edges.

    ``rank_border_edges`` are the border edges with at least one endpoint in
    this rank's partition.  For every *external* vertex ``x`` the rank looks at
    the border edges ``(x, b)`` with ``b`` inside the partition; a pair
    ``(x, b1)``, ``(x, b2)`` is admitted when ``(b1, b2)`` is one of the rank's
    local chordal edges.  Only local information is consulted — hence no
    communication.
    """
    # external endpoint -> internal endpoints reachable over border edges
    by_external: dict[Vertex, list[Vertex]] = {}
    for u, v in rank_border_edges:
        if u in part_vertices and v not in part_vertices:
            by_external.setdefault(v, []).append(u)
        elif v in part_vertices and u not in part_vertices:
            by_external.setdefault(u, []).append(v)
        # edges with both endpoints outside the partition are not this rank's business
    # Adjacency view of the local chordal edges: the O(b²) pair loop below
    # then tests membership directly instead of canonicalising an edge key
    # for every candidate pair.
    chordal_adj: dict[Vertex, set[Vertex]] = {}
    for a, b in local_chordal_edges:
        chordal_adj.setdefault(a, set()).add(b)
        chordal_adj.setdefault(b, set()).add(a)
    empty: set[Vertex] = set()
    admitted: set[Edge] = set()
    for external, internals in by_external.items():
        n = len(internals)
        if n < 2:
            continue
        for i in range(n):
            a = internals[i]
            a_adj = chordal_adj.get(a, empty)
            for j in range(i + 1, n):
                b = internals[j]
                if b in a_adj:
                    admitted.add(edge_key(external, a))
                    admitted.add(edge_key(external, b))
    return sorted(admitted, key=repr)


def _rank_task(
    part_graph: Graph,
    part_vertices: list[Vertex],
    rank_border_edges: list[Edge],
    order: Optional[list[Vertex]],
    strict_order: bool,
) -> tuple[list[Edge], list[Edge], RankWork]:
    """The full per-rank computation (local phase + border admission)."""
    local_edges, work = local_chordal_phase(part_graph, order=order, strict_order=strict_order)
    part_set = set(part_vertices)
    admitted = admit_border_edges_no_communication(rank_border_edges, part_set, set(local_edges))
    work.border_edges = len(rank_border_edges)
    # Admission examines each (external, internal-pair) combination; count the
    # pairwise comparisons as extra examined edges for the cost model.
    work.edges_examined += len(rank_border_edges)
    return local_edges, admitted, work


def parallel_chordal_nocomm_filter(
    graph: Graph,
    n_partitions: int,
    ordering: Optional[str] = "natural",
    explicit_order: Optional[Sequence[Vertex]] = None,
    partition_method: str = "block",
    partition: Optional[Partition] = None,
    strict_order: bool = False,
    repair_cycles: bool = False,
    backend: str = "serial",
    processes: Optional[int] = None,
) -> FilterResult:
    """Run the communication-free parallel chordal filter.

    Parameters
    ----------
    graph:
        The network to sample.
    n_partitions:
        Number of simulated processors ``P``.
    ordering / explicit_order:
        Vertex ordering used both to lay out the block partition and to drive
        every rank's local Dearing–Shier–Warner traversal.
    partition_method:
        Partitioner name (``block``, ``hash``, ``bfs``, ``greedy``); ignored
        when an explicit ``partition`` is supplied.
    repair_cycles:
        Run the optional cycle-repair pass on the border-edge-induced subgraph
        (deletes admitted border edges until no fundamental cycle among them
        survives), as discussed in Section III.A.
    backend:
        ``"serial"`` (default) or ``"process"`` — the ranks are independent, so
        they can run through :func:`repro.parallel.parallel_map` on real
        processes when available.
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    start = time.perf_counter()
    order: Optional[list[Vertex]]
    if explicit_order is not None:
        order = list(explicit_order)
        ordering_name = ordering or "explicit"
    elif ordering is not None:
        order = get_ordering(ordering)(graph)
        ordering_name = ordering
    else:
        order = None
        ordering_name = None

    if partition is None:
        if partition_method == "block" and order is not None:
            partition = partition_graph(graph, n_partitions, method="block", order=order)
        else:
            partition = partition_graph(graph, n_partitions, method=partition_method)

    items = []
    for rank in range(partition.n_parts):
        part_graph = partition.part_subgraph(rank)
        items.append(
            (
                part_graph,
                partition.parts[rank],
                partition.border_edges_of(rank),
                order,
                strict_order,
            )
        )
    rank_outputs = parallel_map(_rank_task, items, backend=backend, processes=processes)

    all_local: list[Edge] = []
    admitted_by_rank: list[list[Edge]] = []
    works: list[RankWork] = []
    for local_edges, admitted, work in rank_outputs:
        all_local.extend(local_edges)
        admitted_by_rank.append(admitted)
        works.append(work)

    # Sequential merge: union of local chordal edges plus admitted border
    # edges; border edges admitted by both owning ranks are duplicates.
    seen_border: set[Edge] = set()
    duplicates = 0
    accepted_border: list[Edge] = []
    for admitted in admitted_by_rank:
        for e in admitted:
            if e in seen_border:
                duplicates += 1
            else:
                seen_border.add(e)
                accepted_border.append(e)

    removed_for_cycles: list[Edge] = []
    if repair_cycles and accepted_border:
        accepted_border, removed_for_cycles = _repair_border_cycles(
            all_local, accepted_border
        )

    kept_edges = list(dict.fromkeys(all_local + accepted_border))
    filtered = graph.spanning_subgraph(kept_edges)
    wall = time.perf_counter() - start

    border_subgraph = Graph(edges=accepted_border) if accepted_border else Graph()
    result = FilterResult(
        graph=filtered,
        original=graph,
        method="chordal_nocomm",
        ordering=ordering_name,
        n_partitions=partition.n_parts,
        partition_method=partition_method if partition is not None else None,
        border_edges=list(partition.border_edges),
        accepted_border_edges=accepted_border,
        duplicate_border_edges=duplicates,
        rank_work=works,
        wall_time=wall,
        extra={
            "strict_order": strict_order,
            "repair_cycles": repair_cycles,
            "cycles_removed_edges": removed_for_cycles,
            "border_cycle_sizes": cycle_basis_sizes(border_subgraph),
            "backend": backend,
        },
    )
    result.compute_simulated_time(with_communication=False)
    return result


def _repair_border_cycles(
    local_edges: Sequence[Edge], accepted_border: Sequence[Edge]
) -> tuple[list[Edge], list[Edge]]:
    """Delete admitted border edges that close cycles longer than a triangle.

    The repair follows the paper's sketch: copy the subgraph induced by the
    border edges (plus the local chordal edges among their endpoints, which
    are protected) to one processor and delete border edges until every
    fundamental cycle in that subgraph is a triangle.
    """
    endpoints: set[Vertex] = set()
    for u, v in accepted_border:
        endpoints.add(u)
        endpoints.add(v)
    protected = [e for e in local_edges if e[0] in endpoints and e[1] in endpoints]
    check_graph = Graph(edges=list(accepted_border) + protected)
    removed: list[Edge] = []
    border_set = set(accepted_border)
    while True:
        sizes = cycle_basis_sizes(check_graph)
        if not sizes or max(sizes) <= 3:
            break
        target = _find_long_cycle_border_edge(check_graph, border_set)
        if target is None:
            break
        check_graph.remove_edge(*target)
        border_set.discard(target)
        removed.append(target)
    kept = [e for e in accepted_border if e not in set(removed)]
    return kept, removed


def _find_long_cycle_border_edge(graph: Graph, border_set: set[Edge]) -> Optional[Edge]:
    """Return a border edge participating in some cycle longer than a triangle."""
    from ..graph.cycles import find_chordless_cycle

    cycle = find_chordless_cycle(graph, min_length=4)
    if cycle is None:
        return None
    n = len(cycle)
    for i in range(n):
        e = edge_key(cycle[i], cycle[(i + 1) % n])
        if e in border_set:
            return e
    # The long cycle consists only of protected local edges; nothing to repair.
    return None
