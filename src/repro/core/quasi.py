"""Quasi-chordal subgraph (QCS) analysis.

Both parallel samplers can leave a few cycles longer than a triangle in the
filtered network: the with-communication algorithm because the sender never
learns which border edges the receiver accepted, and the communication-free
algorithm because independently admitted border edges can close cycles across
partitions.  The paper calls these outputs *quasi-chordal subgraphs* and argues
(Section III.A / IV.C) that the residual cycles are few and do not hurt the
downstream analysis — some even help by connecting clusters that the strict
sequential filter would have separated.

This module quantifies "how quasi" a filtered network is:

* :func:`chordality_deficit` — number of fill-in edges the elimination game
  needs, i.e. 0 exactly when the graph is chordal;
* :func:`long_cycle_census` — the multiset of fundamental-cycle lengths > 3;
* :func:`quasi_chordal_report` — a per-run summary combining global
  chordality, per-partition chordality, border-edge statistics and the cycle
  census, built either from a :class:`~repro.core.results.FilterResult` or
  from raw graphs.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import Any, Optional

from ..graph.cycles import cycle_basis_sizes
from ..graph.graph import Graph
from ..graph.partition import Partition
from .chordal import fill_in_edges, is_chordal
from .results import FilterResult

__all__ = [
    "chordality_deficit",
    "long_cycle_census",
    "QuasiChordalReport",
    "quasi_chordal_report",
]

Vertex = Hashable


def chordality_deficit(graph: Graph) -> int:
    """Return the number of fill-in edges needed to triangulate the graph.

    Zero exactly when the graph is chordal; the larger the value, the further
    the quasi-chordal output is from a true chordal subgraph.  (The fill-in of
    the reverse-MCS elimination order is used; it is a convenient, monotone
    upper bound on the minimum fill-in, which is NP-hard to compute.)
    """
    return len(fill_in_edges(graph))


def long_cycle_census(graph: Graph) -> dict[int, int]:
    """Return ``{cycle length: count}`` for fundamental cycles longer than a triangle."""
    sizes = [s for s in cycle_basis_sizes(graph) if s > 3]
    return dict(Counter(sizes))


@dataclass
class QuasiChordalReport:
    """Summary of how far a filtered network is from being chordal."""

    is_chordal: bool
    chordality_deficit: int
    long_cycles: dict[int, int] = field(default_factory=dict)
    n_partitions: int = 1
    partitions_chordal: Optional[int] = None
    n_border_edges: int = 0
    n_accepted_border_edges: int = 0
    n_duplicate_border_edges: int = 0

    @property
    def n_long_cycles(self) -> int:
        return sum(self.long_cycles.values())

    @property
    def max_cycle_length(self) -> int:
        return max(self.long_cycles, default=3)

    def as_dict(self) -> dict[str, Any]:
        return {
            "is_chordal": self.is_chordal,
            "chordality_deficit": self.chordality_deficit,
            "n_long_cycles": self.n_long_cycles,
            "max_cycle_length": self.max_cycle_length,
            "n_partitions": self.n_partitions,
            "partitions_chordal": self.partitions_chordal,
            "border_edges": self.n_border_edges,
            "accepted_border_edges": self.n_accepted_border_edges,
            "duplicate_border_edges": self.n_duplicate_border_edges,
        }


def quasi_chordal_report(
    result: FilterResult,
    partition: Optional[Partition] = None,
) -> QuasiChordalReport:
    """Build a :class:`QuasiChordalReport` for a filter run.

    When ``partition`` is supplied (or can be reconstructed from the result's
    provenance) the report also states how many partition-induced subgraphs of
    the filtered network are individually chordal — the paper's observation is
    that *only border edges* can break chordality, so this count should equal
    the partition count.
    """
    graph = result.graph
    chordal = is_chordal(graph)
    report = QuasiChordalReport(
        is_chordal=chordal,
        chordality_deficit=0 if chordal else chordality_deficit(graph),
        long_cycles=long_cycle_census(graph) if not chordal else {},
        n_partitions=result.n_partitions,
        n_border_edges=len(result.border_edges),
        n_accepted_border_edges=len(result.accepted_border_edges),
        n_duplicate_border_edges=result.duplicate_border_edges,
    )
    if partition is not None:
        count = 0
        for part_vertices in partition.parts:
            if is_chordal(graph.subgraph(part_vertices)):
                count += 1
        report.partitions_chordal = count
    return report
