"""Sequential (single-processor) sampling filters.

These are the reference implementations the parallel algorithms are compared
against: the sequential maximal chordal subgraph filter (the "1P" runs of the
paper's Figure 11) and a sequential random walk.  Both return
:class:`~repro.core.results.FilterResult` objects with single-rank work
counters so they slot into the same cost model as the parallel runs.

Both filters are *index-native*: the graph is converted to the CSR kernel
once, the ordering is computed directly on indices
(:func:`repro.graph.ordering.ordering_indices`), the kernel runs on plain
integers, and labels reappear exactly once — when the kept edge set is mapped
back at the end.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.graph import Graph, edge_key
from ..graph.ordering import get_ordering, ordering_indices
from ..parallel.timing import RankWork
from .chordal import chordal_subgraph_edge_indices
from .results import FilterResult

__all__ = [
    "sequential_chordal_filter",
    "sequential_random_walk_filter",
    "resolve_order",
    "resolve_order_indices",
]

Vertex = Hashable

#: How many uniform deviates the random walk draws per RNG call.
RANDOM_WALK_RNG_BATCH = 4096


def resolve_order(
    graph: Graph, ordering: Optional[str], explicit_order: Optional[Sequence[Vertex]] = None
) -> tuple[Optional[list[Vertex]], Optional[str]]:
    """Resolve an ordering name / explicit permutation into a vertex list.

    Returns ``(order, name)``; both are ``None`` when neither was requested
    (callers then fall back to the graph's natural order implicitly).
    """
    if explicit_order is not None:
        order = list(explicit_order)
        if set(order) != set(graph.vertices()) or len(order) != graph.n_vertices:
            raise ValueError("explicit order must be a permutation of the graph's vertex set")
        return order, ordering or "explicit"
    if ordering is None:
        return None, None
    fn = get_ordering(ordering)
    return fn(graph), ordering


def resolve_order_indices(
    csr: CSRGraph,
    ordering: Optional[str],
    explicit_order: Optional[Sequence[Vertex]] = None,
) -> tuple[Optional[np.ndarray], Optional[str]]:
    """Index-native :func:`resolve_order`: returns ``(permutation, name)``.

    The permutation is an ``int64`` array over CSR vertex indices (``None``
    when neither an ordering nor an explicit order was requested).  An
    ``explicit_order`` is given in labels — this is the single place the
    sampler pipelines translate it to indices.
    """
    if explicit_order is not None:
        order = list(explicit_order)
        n = csr.n_vertices
        index = csr.label_index
        if len(order) != n or not all(v in index for v in order):
            raise ValueError("explicit order must be a permutation of the graph's vertex set")
        perm = np.fromiter((index[v] for v in order), dtype=np.int64, count=n)
        if np.unique(perm).shape[0] != n:
            raise ValueError("explicit order must be a permutation of the graph's vertex set")
        return perm, ordering or "explicit"
    if ordering is None:
        return None, None
    return ordering_indices(ordering, csr), ordering


def priority_from_permutation(perm: Optional[np.ndarray], n: int) -> Optional[np.ndarray]:
    """Invert an ordering permutation into the per-vertex priority array.

    ``priority[v]`` is the position of vertex ``v`` in the ordering — the form
    the DSW kernel consumes.  ``None`` passes through (natural order).
    """
    if perm is None:
        return None
    priority = np.empty(n, dtype=np.int64)
    priority[perm] = np.arange(n, dtype=np.int64)
    return priority


def sequential_chordal_filter(
    graph: Graph,
    ordering: Optional[str] = "natural",
    explicit_order: Optional[Sequence[Vertex]] = None,
    strict_order: bool = False,
) -> FilterResult:
    """Extract the maximal chordal subgraph of ``graph`` on a single processor.

    Parameters
    ----------
    ordering:
        Name of the vertex ordering (``natural``, ``high_degree``,
        ``low_degree``, ``rcm``) that seeds the Dearing–Shier–Warner
        traversal.  ``None`` uses the natural order.
    explicit_order:
        An explicit vertex permutation overriding ``ordering``.
    strict_order:
        Process vertices exactly in the given order instead of the greedy
        maximum-|S| rule (see :func:`repro.core.chordal.chordal_subgraph_edges`).
    """
    start = time.perf_counter()
    # One CSR conversion serves the ordering, the extraction kernel and the
    # work counters; labels reappear only in the final edge mapping.
    csr = CSRGraph.from_graph(graph)
    perm, name = resolve_order_indices(csr, ordering, explicit_order)
    priority = priority_from_permutation(perm, csr.n_vertices)
    pairs = chordal_subgraph_edge_indices(csr, priority=priority, strict_order=strict_order)
    labels = csr.labels
    edges = [edge_key(labels[i], labels[j]) for i, j in pairs]
    filtered = graph.spanning_subgraph(edges)
    wall = time.perf_counter() - start
    work = RankWork(
        edges_examined=csr.n_edges,
        chordality_checks=csr.degree_sum(),
        border_edges=0,
        messages=0,
        items_sent=0,
        max_degree=csr.max_degree(),
    )
    result = FilterResult(
        graph=filtered,
        original=graph,
        method="chordal_sequential",
        ordering=name or "natural",
        n_partitions=1,
        rank_work=[work],
        wall_time=wall,
        # ``backend`` keeps the execution-layer metadata uniform across the
        # sampler family: the sequential filter is by definition one serial
        # rank (see the backend matrix in docs/ARCHITECTURE.md).
        extra={"strict_order": strict_order, "backend": "serial"},
    )
    result.compute_simulated_time(with_communication=False)
    return result


def sequential_random_walk_filter(
    graph: Graph,
    seed: int = 0,
    selection_fraction: float = 0.5,
) -> FilterResult:
    """Sample ``graph`` with the random-walk control filter on a single processor.

    The walk follows the paper's description: from the current vertex one of
    its ``d`` incident edges is chosen with probability ``1/d`` and marked as
    selected; no visited list is kept, so vertices and edges may be selected
    repeatedly.  The walk stops once the number of *selections* (with
    repetition) reaches ``selection_fraction`` × |E|.  Walks restart from a
    uniformly random vertex whenever the current vertex is isolated.

    The walk runs on the CSR view and draws its randomness in batches of
    ``RANDOM_WALK_RNG_BATCH`` uniform deviates (one ``rng.random`` call per
    batch, each step mapping one deviate onto ``0..d-1``) instead of one
    ``rng.integers`` call per step.  **The random stream therefore differs
    from the seed implementation** for the same seed; the result records
    ``extra["rng_stream"] = "batched-uniform-v2"`` and
    ``tests/test_sequential_filters.py::TestBatchedRandomWalkStream`` pins
    the new stream with exact-edge-set regression tests.
    """
    if not 0.0 < selection_fraction <= 1.0:
        raise ValueError("selection_fraction must lie in (0, 1]")
    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    csr = CSRGraph.from_graph(graph)
    n = csr.n_vertices
    rows = csr.neighbor_lists()
    kept: set[tuple[int, int]] = set()
    selections = 0
    target = int(selection_fraction * csr.n_edges)
    if n and csr.n_edges:
        batch = rng.random(RANDOM_WALK_RNG_BATCH)
        pos = 0

        def draw() -> float:
            nonlocal batch, pos
            if pos == RANDOM_WALK_RNG_BATCH:
                batch = rng.random(RANDOM_WALK_RNG_BATCH)
                pos = 0
            value = batch[pos]
            pos += 1
            return value

        current = int(draw() * n)
        while selections < target:
            row = rows[current]
            d = len(row)
            if not d:
                current = int(draw() * n)
                continue
            nxt = row[int(draw() * d)]
            kept.add((current, nxt) if current < nxt else (nxt, current))
            selections += 1
            current = nxt
    labels = csr.labels
    filtered = graph.spanning_subgraph(
        edge_key(labels[i], labels[j]) for i, j in kept
    )
    wall = time.perf_counter() - start
    work = RankWork(
        edges_examined=selections,
        chordality_checks=0,
        border_edges=0,
        messages=0,
        items_sent=0,
        max_degree=csr.max_degree(),
    )
    result = FilterResult(
        graph=filtered,
        original=graph,
        method="random_walk_sequential",
        ordering=None,
        n_partitions=1,
        rank_work=[work],
        wall_time=wall,
        extra={
            "seed": seed,
            "selection_fraction": selection_fraction,
            "selections": selections,
            "rng_stream": "batched-uniform-v2",
            "rng_batch": RANDOM_WALK_RNG_BATCH,
        },
    )
    result.compute_simulated_time(with_communication=False)
    return result
