"""Sequential (single-processor) sampling filters.

These are the reference implementations the parallel algorithms are compared
against: the sequential maximal chordal subgraph filter (the "1P" runs of the
paper's Figure 11) and a sequential random walk.  Both return
:class:`~repro.core.results.FilterResult` objects with single-rank work
counters so they slot into the same cost model as the parallel runs.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Sequence
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.graph import Graph, edge_key
from ..graph.ordering import get_ordering
from ..parallel.timing import RankWork
from .chordal import chordal_edges_from_csr
from .results import FilterResult

__all__ = ["sequential_chordal_filter", "sequential_random_walk_filter", "resolve_order"]

Vertex = Hashable


def resolve_order(
    graph: Graph, ordering: Optional[str], explicit_order: Optional[Sequence[Vertex]] = None
) -> tuple[Optional[list[Vertex]], Optional[str]]:
    """Resolve an ordering name / explicit permutation into a vertex list.

    Returns ``(order, name)``; both are ``None`` when neither was requested
    (callers then fall back to the graph's natural order implicitly).
    """
    if explicit_order is not None:
        order = list(explicit_order)
        if set(order) != set(graph.vertices()) or len(order) != graph.n_vertices:
            raise ValueError("explicit order must be a permutation of the graph's vertex set")
        return order, ordering or "explicit"
    if ordering is None:
        return None, None
    fn = get_ordering(ordering)
    return fn(graph), ordering


def sequential_chordal_filter(
    graph: Graph,
    ordering: Optional[str] = "natural",
    explicit_order: Optional[Sequence[Vertex]] = None,
    strict_order: bool = False,
) -> FilterResult:
    """Extract the maximal chordal subgraph of ``graph`` on a single processor.

    Parameters
    ----------
    ordering:
        Name of the vertex ordering (``natural``, ``high_degree``,
        ``low_degree``, ``rcm``) that seeds the Dearing–Shier–Warner
        traversal.  ``None`` uses the natural order.
    explicit_order:
        An explicit vertex permutation overriding ``ordering``.
    strict_order:
        Process vertices exactly in the given order instead of the greedy
        maximum-|S| rule (see :func:`repro.core.chordal.chordal_subgraph_edges`).
    """
    start = time.perf_counter()
    order, name = resolve_order(graph, ordering, explicit_order)
    # One CSR conversion serves the extraction kernel and the work counters.
    csr = CSRGraph.from_graph(graph)
    edges = chordal_edges_from_csr(csr, order=order, strict_order=strict_order)
    filtered = graph.spanning_subgraph(edges)
    wall = time.perf_counter() - start
    work = RankWork(
        edges_examined=csr.n_edges,
        chordality_checks=csr.degree_sum(),
        border_edges=0,
        messages=0,
        items_sent=0,
        max_degree=csr.max_degree(),
    )
    result = FilterResult(
        graph=filtered,
        original=graph,
        method="chordal_sequential",
        ordering=name or "natural",
        n_partitions=1,
        rank_work=[work],
        wall_time=wall,
        extra={"strict_order": strict_order},
    )
    result.compute_simulated_time(with_communication=False)
    return result


def sequential_random_walk_filter(
    graph: Graph,
    seed: int = 0,
    selection_fraction: float = 0.5,
) -> FilterResult:
    """Sample ``graph`` with the random-walk control filter on a single processor.

    The walk follows the paper's description: from the current vertex one of
    its ``d`` incident edges is chosen with probability ``1/d`` and marked as
    selected; no visited list is kept, so vertices and edges may be selected
    repeatedly.  The walk stops once the number of *selections* (with
    repetition) reaches ``selection_fraction`` × |E|.  Walks restart from a
    uniformly random vertex whenever the current vertex is isolated.
    """
    if not 0.0 < selection_fraction <= 1.0:
        raise ValueError("selection_fraction must lie in (0, 1]")
    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    vertices = graph.vertices()
    kept: set[tuple[Vertex, Vertex]] = set()
    selections = 0
    target = int(selection_fraction * graph.n_edges)
    if vertices and graph.n_edges:
        current = vertices[int(rng.integers(0, len(vertices)))]
        while selections < target:
            nbrs = graph.neighbors(current)
            if not nbrs:
                current = vertices[int(rng.integers(0, len(vertices)))]
                continue
            nxt = nbrs[int(rng.integers(0, len(nbrs)))]
            kept.add(edge_key(current, nxt))
            selections += 1
            current = nxt
    filtered = graph.spanning_subgraph(kept)
    wall = time.perf_counter() - start
    work = RankWork(
        edges_examined=selections,
        chordality_checks=0,
        border_edges=0,
        messages=0,
        items_sent=0,
        max_degree=graph.max_degree(),
    )
    result = FilterResult(
        graph=filtered,
        original=graph,
        method="random_walk_sequential",
        ordering=None,
        n_partitions=1,
        rank_work=[work],
        wall_time=wall,
        extra={"seed": seed, "selection_fraction": selection_fraction, "selections": selections},
    )
    result.compute_simulated_time(with_communication=False)
    return result
