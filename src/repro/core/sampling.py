"""High-level sampling-filter API.

The pipeline, examples and benchmarks never call the individual samplers
directly; they go through :func:`apply_filter`, which dispatches on a method
name, normalises the common parameters (ordering, partitions, seeds) and
always returns a :class:`~repro.core.results.FilterResult`.  The registry also
powers the command-line style sweeps in the benchmark harness ("for every
filter in FILTERS …").
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from typing import Any, Callable, Optional

from ..graph.graph import Graph
from ..kernels import kernel_backend
from .parallel_comm import parallel_chordal_comm_filter
from .parallel_nocomm import parallel_chordal_nocomm_filter
from .random_walk import parallel_random_walk_filter
from .results import FilterResult
from .sequential import sequential_chordal_filter, sequential_random_walk_filter

__all__ = ["FILTERS", "filter_names", "apply_filter"]

Vertex = Hashable


def _dispatch_chordal(
    graph: Graph,
    n_partitions: int,
    ordering: Optional[str],
    explicit_order: Optional[Sequence[Vertex]],
    **kwargs: Any,
) -> FilterResult:
    """Chordal filter: sequential when ``n_partitions == 1``, no-comm otherwise."""
    if n_partitions <= 1:
        kwargs.pop("partition_method", None)
        kwargs.pop("repair_cycles", None)
        kwargs.pop("backend", None)
        kwargs.pop("seed", None)
        return sequential_chordal_filter(
            graph, ordering=ordering, explicit_order=explicit_order, **kwargs
        )
    kwargs.pop("seed", None)
    return parallel_chordal_nocomm_filter(
        graph,
        n_partitions,
        ordering=ordering,
        explicit_order=explicit_order,
        **kwargs,
    )


def _dispatch_chordal_comm(
    graph: Graph,
    n_partitions: int,
    ordering: Optional[str],
    explicit_order: Optional[Sequence[Vertex]],
    **kwargs: Any,
) -> FilterResult:
    kwargs.pop("seed", None)
    kwargs.pop("repair_cycles", None)
    if n_partitions <= 1:
        kwargs.pop("partition_method", None)
        kwargs.pop("backend", None)
        return sequential_chordal_filter(
            graph, ordering=ordering, explicit_order=explicit_order, **kwargs
        )
    return parallel_chordal_comm_filter(
        graph,
        n_partitions,
        ordering=ordering,
        explicit_order=explicit_order,
        **kwargs,
    )


def _dispatch_random_walk(
    graph: Graph,
    n_partitions: int,
    ordering: Optional[str],
    explicit_order: Optional[Sequence[Vertex]],
    **kwargs: Any,
) -> FilterResult:
    kwargs.pop("strict_order", None)
    kwargs.pop("repair_cycles", None)
    kwargs.pop("backend", None)
    seed = kwargs.pop("seed", 0)
    if n_partitions <= 1:
        kwargs.pop("partition_method", None)
        return sequential_random_walk_filter(graph, seed=seed, **kwargs)
    return parallel_random_walk_filter(
        graph,
        n_partitions,
        seed=seed,
        explicit_order=explicit_order,
        **kwargs,
    )


FilterFn = Callable[..., FilterResult]

#: Registry of sampling filters keyed by the names used throughout the repo.
FILTERS: dict[str, FilterFn] = {
    "chordal": _dispatch_chordal,
    "chordal_nocomm": _dispatch_chordal,
    "chordal_comm": _dispatch_chordal_comm,
    "random_walk": _dispatch_random_walk,
}

_ALIASES = {
    "qcs": "chordal_nocomm",
    "chordal-nocomm": "chordal_nocomm",
    "chordal-comm": "chordal_comm",
    "rw": "random_walk",
    "randomwalk": "random_walk",
}


def filter_names() -> list[str]:
    """Canonical filter names (deduplicated, presentation order)."""
    return ["chordal", "chordal_comm", "random_walk"]


def apply_filter(
    graph: Graph,
    method: str = "chordal",
    ordering: Optional[str] = "natural",
    n_partitions: int = 1,
    explicit_order: Optional[Sequence[Vertex]] = None,
    kernels: Optional[str] = None,
    **kwargs: Any,
) -> FilterResult:
    """Apply a sampling filter to ``graph`` and return its :class:`FilterResult`.

    Parameters
    ----------
    method:
        ``"chordal"`` (communication-free parallel / sequential), ``"chordal_comm"``
        (the older with-communication baseline) or ``"random_walk"`` (control).
    ordering:
        Vertex ordering name; ignored by the random walk.
    n_partitions:
        Number of simulated processors; 1 selects the sequential variants.
    kernels:
        Kernel tier for the chordality kernels the call touches, one of
        :func:`~repro.kernels.available_kernel_tiers` (``None`` = ambient
        selection).  Scoped via :func:`~repro.kernels.kernel_backend`, so it
        reaches every internal sampler without widening their signatures.
        All tiers produce the identical filtered graph.
    kwargs:
        Forwarded to the underlying sampler (``seed``, ``partition_method``,
        ``strict_order``, ``repair_cycles``, ``selection_fraction``, …).
    """
    key = method.strip().lower()
    key = _ALIASES.get(key, key)
    if key not in FILTERS:
        raise KeyError(f"unknown filter {method!r}; valid: {sorted(set(FILTERS) | set(_ALIASES))}")
    with kernel_backend(kernels):
        return FILTERS[key](graph, n_partitions, ordering, explicit_order, **kwargs)
