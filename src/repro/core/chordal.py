"""Chordal graph kernels.

A graph is *chordal* (triangulated) when every cycle of length four or more
has a chord, i.e. the longest chordless cycle is a triangle.  The paper's
sampling filter extracts a **maximal chordal subgraph** of a gene correlation
network: a chordal subgraph to which no further original edge can be added
without destroying chordality.  Finding the *maximum* chordal subgraph is
NP-hard; the paper builds on the polynomial-time O(|E|·d) algorithm of
Dearing, Shier & Warner (Discrete Applied Mathematics, 1988).

This module provides

* :func:`maximum_cardinality_search` — the MCS vertex ordering,
* :func:`is_perfect_elimination_ordering` / :func:`is_chordal` — the classic
  Tarjan–Yannakakis recognition test,
* :func:`maximal_chordal_subgraph` — the Dearing–Shier–Warner construction,
  with the vertex-ordering hooks the paper's sensitivity study requires,
* :func:`augment_to_maximal` — a (slower) post-pass that adds any remaining
  admissible edges, used to verify maximality in tests,
* simplicial-vertex and fill-in helpers.

All functions treat the input graph as read-only.

The hot paths (MCS, the PEO check and the DSW construction) run on the
int-indexed :class:`~repro.graph.csr.CSRGraph` kernel: the public functions
convert the :class:`Graph` at the boundary, run the ``*_indices`` kernel on
plain integers and map the result back to labels.  The original
label-and-set implementations are retained as ``reference_*`` functions; the
property suite asserts that kernel and reference agree edge-for-edge on
randomized graphs, so the CSR port cannot silently drift from the seed
semantics.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable, Sequence
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.graph import Graph, edge_key
from ..kernels import jit_impl, resolve_kernels

__all__ = [
    "maximum_cardinality_search",
    "is_perfect_elimination_ordering",
    "is_chordal",
    "find_simplicial_vertex",
    "is_simplicial",
    "fill_in_edges",
    "maximal_chordal_subgraph",
    "chordal_subgraph_edges",
    "chordal_subgraph_edge_indices",
    "chordal_edges_from_csr",
    "mcs_order_indices",
    "is_peo_indices",
    "augment_to_maximal",
    "is_maximal_chordal_subgraph",
    "edge_insertion_preserves_chordality",
    "reference_chordal_subgraph_edges",
    "reference_maximum_cardinality_search",
]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


# ----------------------------------------------------------------------
# recognition
# ----------------------------------------------------------------------
def mcs_order_indices(
    csr: CSRGraph, start: Optional[int] = None, kernels: Optional[str] = None
) -> list[int]:
    """Maximum Cardinality Search on the CSR kernel; returns vertex indices.

    Selects, at every step, the unvisited vertex with the most visited
    neighbours, ties broken by the smallest index (= ``Graph`` insertion
    order) — exactly the selection rule of
    :func:`reference_maximum_cardinality_search`, but with a lazy max-heap so
    the whole search is O((V + E) log V) instead of O(V²).

    ``kernels`` selects the execution tier (see :mod:`repro.kernels`); the
    ``jit`` tier runs the same lazy heap as a compiled packed-key kernel.
    At this index level ``reference`` is served by the ``numpy`` tier — the
    seed body speaks labels, not indices.
    """
    n = csr.n_vertices
    if n == 0:
        return []
    if resolve_kernels(kernels) == "jit":
        order = jit_impl("mcs_order")(
            csr.indptr, csr.indices, -1 if start is None else int(start)
        )
        return order.tolist()
    nbrs = csr.neighbor_lists()
    weight = [0] * n
    visited = bytearray(n)
    order: list[int] = []
    # Entries are (-weight, index); stale entries are skipped on pop.
    heap: list[tuple[int, int]] = []

    def visit(u: int) -> None:
        visited[u] = 1
        order.append(u)
        for w in nbrs[u]:
            if not visited[w]:
                weight[w] += 1
                heapq.heappush(heap, (-weight[w], w))

    if start is not None:
        visit(start)
    # Seed lazily *after* the optional start visit, so the start vertex never
    # sits in the heap as a permanently stale entry; seeding at the current
    # weights leaves the pop sequence — hence the order — unchanged.
    heap.extend((-weight[v], v) for v in range(n) if not visited[v])
    heapq.heapify(heap)
    while len(order) < n:
        neg_w, u = heapq.heappop(heap)
        if visited[u] or -neg_w != weight[u]:
            continue
        visit(u)
    return order


def maximum_cardinality_search(
    graph: Graph, start: Optional[Vertex] = None, kernels: Optional[str] = None
) -> list[Vertex]:
    """Return a Maximum Cardinality Search (MCS) ordering of the graph.

    MCS repeatedly selects the unvisited vertex with the most visited
    neighbours (ties broken deterministically by insertion order).  For a
    chordal graph the *reverse* of this ordering is a perfect elimination
    ordering, which is the basis of the chordality test.

    ``kernels`` selects the execution tier (``reference`` runs the retained
    seed body, ``numpy`` the CSR heap, ``jit`` the compiled kernel); all
    tiers return the identical ordering.
    """
    if graph.n_vertices == 0:
        return []
    if start is not None and start not in graph:
        raise KeyError(f"start vertex {start!r} not in graph")
    kernels = resolve_kernels(kernels)
    if kernels == "reference":
        return reference_maximum_cardinality_search(graph, start)
    csr = CSRGraph.from_graph(graph)
    start_idx = None if start is None else csr.index_of(start)
    return csr.to_labels(mcs_order_indices(csr, start_idx, kernels=kernels))


def is_peo_indices(csr: CSRGraph, order: Sequence[int]) -> bool:
    """Perfect-elimination check on the CSR kernel (``order`` holds indices)."""
    n = csr.n_vertices
    pos = [0] * n
    for i, v in enumerate(order):
        pos[v] = i
    nbrs = csr.neighbor_lists()
    adj_sets = csr.neighbor_sets()
    for v in order:
        pv = pos[v]
        later = [w for w in nbrs[v] if pos[w] > pv]
        if len(later) <= 1:
            continue
        w = min(later, key=pos.__getitem__)
        w_adj = adj_sets[w]
        for x in later:
            if x != w and x not in w_adj:
                return False
    return True


def is_perfect_elimination_ordering(graph: Graph, order: Sequence[Vertex]) -> bool:
    """Return ``True`` when ``order`` is a perfect elimination ordering of ``graph``.

    ``order[0]`` is eliminated first.  The test is the standard one: for every
    vertex ``v``, its neighbours that appear *later* in the ordering must have
    their earliest member ``w`` adjacent to all the others (Tarjan &
    Yannakakis, 1984).  Runs in O(V + E·d).
    """
    if len(order) != graph.n_vertices or set(order) != set(graph.vertices()):
        raise ValueError("order must be a permutation of the graph's vertex set")
    csr = CSRGraph.from_graph(graph)
    return is_peo_indices(csr, csr.to_indices(order))


def is_chordal(graph: Graph) -> bool:
    """Return ``True`` when the graph is chordal (every cycle ≥ 4 has a chord)."""
    if graph.n_vertices <= 3:
        return True
    csr = CSRGraph.from_graph(graph)
    mcs = mcs_order_indices(csr)
    mcs.reverse()
    return is_peo_indices(csr, mcs)


def reference_maximum_cardinality_search(
    graph: Graph, start: Optional[Vertex] = None
) -> list[Vertex]:
    """The seed label-level MCS implementation (O(V²) selection scan).

    Kept verbatim as the behavioural reference for
    :func:`maximum_cardinality_search`; the property suite asserts both
    produce the identical ordering.
    """
    if graph.n_vertices == 0:
        return []
    verts = graph.vertices()
    position = {v: i for i, v in enumerate(verts)}
    if start is not None and start not in graph:
        raise KeyError(f"start vertex {start!r} not in graph")
    weight = {v: 0 for v in verts}
    visited: set[Vertex] = set()
    order: list[Vertex] = []
    for step in range(len(verts)):
        if step == 0 and start is not None:
            u = start
        else:
            u = max(
                (v for v in verts if v not in visited),
                key=lambda v: (weight[v], -position[v]),
            )
        visited.add(u)
        order.append(u)
        for w in graph.neighbors(u):
            if w not in visited:
                weight[w] += 1
    return order


def is_simplicial(graph: Graph, v: Vertex) -> bool:
    """Return ``True`` when the neighbourhood of ``v`` induces a clique."""
    nbrs = graph.neighbors(v)
    for i, a in enumerate(nbrs):
        a_adj = graph.neighbor_set(a)
        for b in nbrs[i + 1 :]:
            if b not in a_adj:
                return False
    return True


def find_simplicial_vertex(graph: Graph) -> Optional[Vertex]:
    """Return some simplicial vertex, or ``None`` when none exists.

    Every chordal graph with at least one vertex has at least one simplicial
    vertex (Dirac), so this doubles as a cheap sanity probe in the tests.
    """
    for v in graph.vertices():
        if is_simplicial(graph, v):
            return v
    return None


def fill_in_edges(graph: Graph, order: Optional[Sequence[Vertex]] = None) -> list[Edge]:
    """Return the fill-in edges produced by eliminating vertices in ``order``.

    The elimination game: removing a vertex connects all of its remaining
    neighbours.  An empty fill-in certifies that ``order`` is a perfect
    elimination ordering.  Defaults to the reverse MCS order so that the
    result is empty exactly when the graph is chordal.
    """
    if order is None:
        order = list(reversed(maximum_cardinality_search(graph)))
    if len(order) != graph.n_vertices or set(order) != set(graph.vertices()):
        raise ValueError("order must be a permutation of the graph's vertex set")
    work = graph.copy()
    fills: list[Edge] = []
    for v in order:
        nbrs = work.neighbors(v)
        for i, a in enumerate(nbrs):
            for b in nbrs[i + 1 :]:
                if not work.has_edge(a, b):
                    work.add_edge(a, b)
                    fills.append(edge_key(a, b))
        work.remove_vertex(v)
    return fills


# ----------------------------------------------------------------------
# Dearing–Shier–Warner maximal chordal subgraph
# ----------------------------------------------------------------------
def chordal_subgraph_edge_indices(
    csr: CSRGraph,
    priority: Optional[Sequence[int]] = None,
    strict_order: bool = False,
    start: Optional[int] = None,
    kernels: Optional[str] = None,
) -> list[tuple[int, int]]:
    """Dearing–Shier–Warner extraction on the CSR kernel.

    ``priority[v]`` is vertex ``v``'s rank in the preference order (0 =
    first); ``None`` means natural (index) order.  Returns accepted edges as
    index pairs, grouped by processing step; within a step the pairs are
    emitted in ascending partner index, so the output is deterministic
    regardless of label types.  The greedy selection rule and tie-breaking are
    identical to :func:`reference_chordal_subgraph_edges` — priorities are
    unique, so both implementations process vertices in the same sequence and
    accept the same edge set.

    ``kernels`` selects the execution tier (see :mod:`repro.kernels`); the
    ``jit`` tier runs a flat-array port with the identical admission order.
    At this index level ``reference`` is served by the ``numpy`` tier — the
    seed body speaks labels, not indices.
    """
    n = csr.n_vertices
    if n == 0:
        return []
    if priority is None:
        priority = range(n)
    if start is None:
        start = min(range(n), key=priority.__getitem__)
    if resolve_kernels(kernels) == "jit":
        # Normalise the (possibly sparse or tied) priorities to a unique rank
        # permutation; the stable argsort breaks ties by index, exactly the
        # (priority[v], v) order the lazy-heap entries fall back to.
        prio = np.asarray(priority, dtype=np.int64)
        rank = np.empty(n, dtype=np.int64)
        rank[np.argsort(prio, kind="stable")] = np.arange(n, dtype=np.int64)
        if strict_order:
            sequence = np.argsort(rank)
            if sequence[0] != start:
                sequence = np.concatenate(
                    (np.array([start], dtype=np.int64), sequence[sequence != start])
                )
            us, vs = jit_impl("dsw_strict")(
                csr.indptr, csr.indices, np.ascontiguousarray(sequence)
            )
        else:
            us, vs = jit_impl("dsw_greedy")(csr.indptr, csr.indices, rank, int(start))
        return list(zip(us.tolist(), vs.tolist()))
    nbrs = csr.neighbor_lists()

    # S(v): processed accepted-neighbours of v (always a clique in the
    # accepted subgraph); the update rule "u joins S(v) iff S(v) ⊆ S(u)" is
    # the DSW invariant — see reference_chordal_subgraph_edges for the
    # annotated original.
    s: list[set[int]] = [set() for _ in range(n)]
    processed = bytearray(n)
    accepted: list[tuple[int, int]] = []
    heap: list[tuple[int, int, int]] = []
    greedy = not strict_order  # strict mode never pops the heap, so skip pushes

    def process(u: int) -> None:
        processed[u] = 1
        su = s[u]
        for w in sorted(su):
            accepted.append((u, w))
        for v in nbrs[u]:
            if processed[v]:
                continue
            sv = s[v]
            if sv <= su:
                sv.add(u)
                if greedy:
                    heapq.heappush(heap, (-len(sv), priority[v], v))

    if strict_order:
        sequence = sorted(range(n), key=priority.__getitem__)
        if sequence[0] != start:
            sequence.remove(start)
            sequence.insert(0, start)
        for u in sequence:
            process(u)
    else:
        # Greedy maximum-|S| selection with a lazy max-heap: every S-growth
        # pushes a fresh entry (inside process), stale entries are skipped on
        # pop.  Total pushes are O(E), keeping selection O(E log V).
        process(start)
        for v in range(n):
            if not processed[v]:
                heapq.heappush(heap, (-len(s[v]), priority[v], v))
        n_processed = 1
        while n_processed < n:
            neg_size, _, u = heapq.heappop(heap)
            if processed[u] or -neg_size != len(s[u]):
                continue
            process(u)
            n_processed += 1
    return accepted


def chordal_edges_from_csr(
    csr: CSRGraph,
    order: Optional[Sequence[Vertex]] = None,
    strict_order: bool = False,
    kernels: Optional[str] = None,
) -> list[Edge]:
    """Run the DSW kernel on a prebuilt CSR view and return label-level edges.

    ``order`` is a *label* sequence that may be a superset of the CSR's
    vertices (e.g. a global vertex ordering restricted to one partition);
    labels absent from ``csr`` are skipped, and the relative order of the
    present ones defines the preference ranks.  This is the entry point the
    per-partition sampler loops use so that one conversion serves both the
    extraction and the work counters.
    """
    priority: Optional[list[int]] = None
    if order is not None:
        index = csr.label_index
        priority = [-1] * csr.n_vertices
        rank = 0
        for v in order:
            i = index.get(v)
            if i is not None and priority[i] < 0:  # first occurrence wins
                priority[i] = rank
                rank += 1
        if rank != csr.n_vertices:
            raise ValueError("order must cover every vertex of the graph")
    pairs = chordal_subgraph_edge_indices(
        csr, priority=priority, strict_order=strict_order, kernels=kernels
    )
    labels = csr.labels
    return [edge_key(labels[i], labels[j]) for i, j in pairs]


def chordal_subgraph_edges(
    graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
    strict_order: bool = False,
    start: Optional[Vertex] = None,
    kernels: Optional[str] = None,
) -> list[Edge]:
    """Return the edges of a maximal chordal subgraph of ``graph``.

    The construction follows Dearing, Shier & Warner (1988).  Vertices are
    added to a processed set ``P`` one at a time; for every unprocessed vertex
    ``v`` the algorithm maintains ``S(v)`` — the set of processed neighbours of
    ``v`` that form a clique in the subgraph built so far.  When ``v`` is
    processed, the edges from ``v`` to every member of ``S(v)`` are accepted.
    Because each accepted neighbourhood is a clique, the reverse processing
    order is a perfect elimination ordering and the result is chordal; the
    greedy selection rule (process the vertex with the largest ``S``) makes it
    maximal.  Complexity is O(|E|·d) where ``d`` is the maximum degree.

    The computation runs on the int-indexed CSR kernel
    (:func:`chordal_subgraph_edge_indices`); labels only appear at this
    boundary.

    Parameters
    ----------
    order:
        A vertex permutation expressing the *preference* order studied in the
        paper (natural / high-degree / low-degree / RCM).  In the default
        greedy mode it breaks ties between vertices with equal ``|S|`` and
        chooses the starting vertex; in ``strict_order`` mode vertices are
        processed exactly in this sequence.
    strict_order:
        Process vertices exactly in ``order`` (still chordal, possibly not
        maximal).  Mirrors the "graph traversal variation" wording of the
        paper when the permutation is imposed directly.
    start:
        Optional starting vertex (defaults to the first vertex of ``order``).
    kernels:
        Execution tier (see :mod:`repro.kernels`): ``reference`` runs the
        retained seed body, ``numpy`` the CSR kernel, ``jit`` the compiled
        port.  Every tier accepts the identical edge set.

    Returns
    -------
    list of canonical edges of the chordal subgraph.
    """
    verts = graph.vertices()
    n = len(verts)
    if n == 0:
        return []
    kernels = resolve_kernels(kernels)
    if kernels == "reference":
        return reference_chordal_subgraph_edges(
            graph, order=order, strict_order=strict_order, start=start
        )
    csr = CSRGraph.from_graph(graph)
    start_idx: Optional[int] = None
    if order is None:
        priority: Optional[list[int]] = None
    else:
        if len(order) != n or set(order) != set(verts):
            raise ValueError("order must be a permutation of the graph's vertex set")
        priority = [0] * n
        index = csr.label_index
        for rank, v in enumerate(order):
            priority[index[v]] = rank
    if start is not None:
        if start not in graph:
            raise KeyError(f"start vertex {start!r} not in graph")
        start_idx = csr.index_of(start)
    pairs = chordal_subgraph_edge_indices(
        csr, priority=priority, strict_order=strict_order, start=start_idx, kernels=kernels
    )
    labels = csr.labels
    return [edge_key(labels[i], labels[j]) for i, j in pairs]


def reference_chordal_subgraph_edges(
    graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
    strict_order: bool = False,
    start: Optional[Vertex] = None,
) -> list[Edge]:
    """The seed label-and-set DSW implementation.

    Kept verbatim as the behavioural reference for
    :func:`chordal_subgraph_edges`; the property suite asserts the CSR kernel
    accepts the identical edge set under every ordering.
    """
    verts = graph.vertices()
    n = len(verts)
    if n == 0:
        return []
    if order is None:
        order = verts
    if len(order) != n or set(order) != set(verts):
        raise ValueError("order must be a permutation of the graph's vertex set")
    priority = {v: i for i, v in enumerate(order)}
    if start is None:
        start = order[0]
    elif start not in graph:
        raise KeyError(f"start vertex {start!r} not in graph")

    # S(v): processed G'-neighbours of v (always a clique in the accepted subgraph)
    s: dict[Vertex, set[Vertex]] = {v: set() for v in verts}
    processed: set[Vertex] = set()
    accepted: list[Edge] = []
    # adjacency of the accepted subgraph restricted to processed vertices
    accepted_adj: dict[Vertex, set[Vertex]] = {v: set() for v in verts}

    def process(u: Vertex) -> None:
        processed.add(u)
        for w in s[u]:
            accepted.append(edge_key(u, w))
            accepted_adj[u].add(w)
            accepted_adj[w].add(u)
        for v in graph.neighbors(u):
            if v in processed:
                continue
            # u may join S(v) only if S(v) ∪ {u} stays a clique in the accepted
            # subgraph, i.e. u is accepted-adjacent to every member of S(v).
            # Since u's accepted neighbours are exactly S(u), the condition is
            # S(v) ⊆ S(u) — the Dearing–Shier–Warner update rule.
            if s[v] <= s[u]:
                s[v].add(u)

    if strict_order:
        sequence = list(order)
        if start != sequence[0]:
            sequence.remove(start)
            sequence.insert(0, start)
        for u in sequence:
            process(u)
    else:
        # Greedy maximum-|S| selection with a lazy max-heap: every time a
        # vertex's S grows we push a fresh entry; stale entries are skipped on
        # pop.  Total pushes are bounded by the number of S-updates, i.e. O(E),
        # keeping the selection loop O(E log V) instead of O(V²).
        heap: list[tuple[int, int, Vertex]] = []

        def push(v: Vertex) -> None:
            heapq.heappush(heap, (-len(s[v]), priority[v], v))

        original_process = process

        def process_and_repush(u: Vertex) -> None:
            before = {v: len(s[v]) for v in graph.neighbors(u) if v not in processed}
            original_process(u)
            for v, old_size in before.items():
                if len(s[v]) != old_size:
                    push(v)

        process = process_and_repush  # type: ignore[assignment]
        process(start)
        for v in order:
            if v not in processed:
                push(v)
        n_processed = len(processed)
        while n_processed < n:
            if heap:
                neg_size, _, u = heapq.heappop(heap)
                if u in processed or -neg_size != len(s[u]):
                    continue
            else:  # pragma: no cover - defensive; heap is seeded with all vertices
                u = next(v for v in order if v not in processed)
            process(u)
            n_processed += 1
    return accepted


def maximal_chordal_subgraph(
    graph: Graph,
    order: Optional[Sequence[Vertex]] = None,
    strict_order: bool = False,
    start: Optional[Vertex] = None,
    keep_all_vertices: bool = True,
) -> Graph:
    """Return a maximal chordal subgraph of ``graph`` as a new :class:`Graph`.

    See :func:`chordal_subgraph_edges` for the algorithm and parameters.
    ``keep_all_vertices`` keeps isolated vertices in the result (the sampling
    convention: filters drop edges, never genes).
    """
    edges = chordal_subgraph_edges(graph, order=order, strict_order=strict_order, start=start)
    if keep_all_vertices:
        return graph.spanning_subgraph(edges)
    return graph.edge_subgraph(edges)


def augment_to_maximal(graph: Graph, subgraph: Graph) -> Graph:
    """Greedily add original edges to ``subgraph`` while it stays chordal.

    This is the brute-force maximality completion: each candidate edge is
    tried in deterministic order and kept only if the enlarged subgraph
    remains chordal (checked with MCS).  Quadratic in practice — intended for
    verification on test-sized graphs and for the sequential reference filter,
    not for the parallel hot path.
    """
    result = subgraph.copy()
    for v in graph.vertices():
        result.add_vertex(v)
    for u, v in graph.edges():
        if result.has_edge(u, v):
            continue
        result.add_edge(u, v)
        if not is_chordal(result):
            result.remove_edge(u, v)
    return result


def edge_insertion_preserves_chordality(chordal_graph: Graph, u: Vertex, v: Vertex) -> bool:
    """Return ``True`` when adding edge ``{u, v}`` to a *chordal* graph keeps it chordal.

    Uses the two-pair characterisation: for non-adjacent vertices ``u`` and
    ``v`` of a chordal graph ``H``, ``H + uv`` is chordal exactly when every
    chordless ``u``–``v`` path in ``H`` has length two, which holds iff ``u``
    and ``v`` are disconnected in ``H − (N(u) ∩ N(v))``.  This is the
    receiver-side admission test of the with-communication parallel sampler —
    it avoids re-running the full recognition algorithm for every candidate
    border edge.

    Endpoints absent from the graph are treated as isolated vertices (adding
    an edge to a new vertex can never create a cycle).  The caller is
    responsible for ``chordal_graph`` actually being chordal; the result is
    meaningless otherwise.
    """
    if u == v:
        raise ValueError("self loops cannot be inserted")
    if not chordal_graph.has_vertex(u) or not chordal_graph.has_vertex(v):
        return True
    if chordal_graph.has_edge(u, v):
        return True
    common = chordal_graph.neighbor_set(u) & chordal_graph.neighbor_set(v)
    # BFS from u avoiding the common neighbourhood; if v is unreachable the
    # pair is a two-pair (or lies in different components) and insertion is safe.
    blocked = common
    stack = [u]
    seen = {u} | blocked
    while stack:
        x = stack.pop()
        for y in chordal_graph.neighbors(x):
            if y == v:
                return False
            if y not in seen:
                seen.add(y)
                stack.append(y)
    return True


def is_maximal_chordal_subgraph(graph: Graph, subgraph: Graph) -> bool:
    """Return ``True`` when ``subgraph`` is chordal and no original edge can be added.

    Used by the test-suite to validate the Dearing–Shier–Warner construction.
    """
    if not is_chordal(subgraph):
        return False
    for u, v in graph.iter_edges():
        if subgraph.has_edge(u, v):
            continue
        trial = subgraph.copy()
        trial.add_vertex(u)
        trial.add_vertex(v)
        trial.add_edge(u, v)
        if is_chordal(trial):
            return False
    return True
