"""Expression-data substrate: microarray matrices, correlation networks, datasets.

The filters operate on gene correlation networks; this package builds those
networks — from synthetic microarray data that mimics the paper's GEO series
(see DESIGN.md §2 for the substitution rationale) — via exact Pearson
correlation with significance and magnitude thresholds.
"""

from .correlation import (
    CorrelationThreshold,
    build_correlation_csr,
    build_correlation_network,
    correlated_pair_arrays,
    correlated_pairs,
    correlation_p_value,
    correlation_p_values,
    critical_correlation,
    csr_from_pair_arrays,
    network_from_pair_arrays,
    pearson_correlation_matrix,
)
from .datasets import (
    DATASET_CONFIGS,
    StudyConfig,
    SyntheticStudy,
    dataset_names,
    generate_study,
    make_study,
)
from .io import read_expression_tsv, write_expression_tsv
from .microarray import ExpressionMatrix
from .preprocess import (
    DifferentialExpressionResult,
    apply_differential_filter,
    differential_expression_scores,
    select_differential_genes,
)

__all__ = [
    "ExpressionMatrix",
    "CorrelationThreshold",
    "pearson_correlation_matrix",
    "correlation_p_value",
    "correlation_p_values",
    "critical_correlation",
    "correlated_pairs",
    "correlated_pair_arrays",
    "build_correlation_network",
    "build_correlation_csr",
    "csr_from_pair_arrays",
    "network_from_pair_arrays",
    "StudyConfig",
    "SyntheticStudy",
    "generate_study",
    "make_study",
    "DATASET_CONFIGS",
    "dataset_names",
    "DifferentialExpressionResult",
    "differential_expression_scores",
    "select_differential_genes",
    "apply_differential_filter",
    "write_expression_tsv",
    "read_expression_tsv",
]
