"""Pearson correlation networks from expression data.

The paper builds its networks by computing the Pearson correlation coefficient
between every pair of genes, keeping pairs with a significant p-value
(p ≤ 0.0005) and a very high correlation (0.95 ≤ |ρ| ≤ 1.0), and connecting the
corresponding genes with an edge.  This module implements that construction:

* :func:`pearson_correlation_matrix` — the full ρ matrix (blocked so that
  tens of thousands of genes do not require an n² intermediate in one piece),
* :func:`correlation_p_value` / :func:`critical_correlation` — the two-sided
  t-distribution significance test for ρ given the sample count,
* :func:`build_correlation_network` — the thresholded network as a
  :class:`repro.graph.Graph` whose edges carry the correlation as a ``rho``
  attribute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats

from ..graph.graph import Graph
from .microarray import ExpressionMatrix

__all__ = [
    "pearson_correlation_matrix",
    "correlation_p_value",
    "critical_correlation",
    "CorrelationThreshold",
    "build_correlation_network",
    "correlated_pairs",
]


def pearson_correlation_matrix(matrix: ExpressionMatrix) -> np.ndarray:
    """Return the full genes × genes Pearson correlation matrix.

    Zero-variance genes yield zero correlation against everything (instead of
    NaN) so the downstream thresholding never picks them up.
    """
    std = matrix.standardized()
    n = std.n_samples
    if n < 2:
        return np.zeros((matrix.n_genes, matrix.n_genes))
    corr = std.values @ std.values.T / n
    np.clip(corr, -1.0, 1.0, out=corr)
    np.fill_diagonal(corr, 1.0)
    return corr


def correlation_p_value(rho: float, n_samples: int) -> float:
    """Two-sided p-value of a Pearson correlation under the null ρ = 0.

    Uses the exact ``t = ρ·sqrt((n−2)/(1−ρ²))`` transform with ``n−2`` degrees
    of freedom.  ``|ρ| = 1`` returns 0.0 and fewer than three samples returns
    1.0 (no power).
    """
    if n_samples < 3:
        return 1.0
    r = max(-1.0, min(1.0, float(rho)))
    if abs(r) >= 1.0:
        return 0.0
    t = abs(r) * math.sqrt((n_samples - 2) / (1.0 - r * r))
    return float(2.0 * stats.t.sf(t, df=n_samples - 2))


def critical_correlation(p_value: float, n_samples: int) -> float:
    """Return the smallest |ρ| whose two-sided p-value is ≤ ``p_value``.

    Convenient for turning the paper's p ≤ 0.0005 criterion into a correlation
    cut-off that can be combined with the explicit 0.95 threshold.
    """
    if n_samples < 3:
        return 1.0
    if not 0.0 < p_value < 1.0:
        raise ValueError("p_value must lie in (0, 1)")
    t_crit = stats.t.isf(p_value / 2.0, df=n_samples - 2)
    return float(t_crit / math.sqrt(n_samples - 2 + t_crit ** 2))


@dataclass(frozen=True)
class CorrelationThreshold:
    """The edge-admission criterion for correlation networks.

    ``min_abs_rho`` is the paper's 0.95 cut-off; ``max_p_value`` its 0.0005
    significance requirement; ``include_negative`` controls whether strong
    *negative* correlations also become edges (the paper keeps only the
    0.95 ≤ ρ ≤ 1.0 band, so the default is ``False``).
    """

    min_abs_rho: float = 0.95
    max_p_value: float = 0.0005
    include_negative: bool = False

    def admits(self, rho: float, n_samples: int) -> bool:
        """Return ``True`` when a correlation passes both criteria."""
        value = rho if self.include_negative else max(rho, 0.0)
        if self.include_negative:
            value = abs(rho)
        if value < self.min_abs_rho:
            return False
        return correlation_p_value(rho, n_samples) <= self.max_p_value

    def effective_cutoff(self, n_samples: int) -> float:
        """Return the binding |ρ| cut-off once the p-value criterion is folded in."""
        return max(self.min_abs_rho, critical_correlation(self.max_p_value, n_samples))


def correlated_pairs(
    matrix: ExpressionMatrix,
    threshold: Optional[CorrelationThreshold] = None,
    block_size: int = 2048,
) -> list[tuple[str, str, float]]:
    """Return every gene pair passing the threshold as ``(gene_a, gene_b, rho)``.

    The correlation matrix is computed in ``block_size`` × ``block_size`` tiles
    of the upper triangle so the memory footprint stays bounded for large gene
    sets (the paper's CRE network has ~28k genes).
    """
    threshold = threshold or CorrelationThreshold()
    std = matrix.standardized()
    n_samples = std.n_samples
    if n_samples < 2 or matrix.n_genes < 2:
        return []
    cutoff = threshold.effective_cutoff(n_samples)
    values = std.values
    genes = matrix.genes
    n = matrix.n_genes
    pairs: list[tuple[str, str, float]] = []
    for bi in range(0, n, block_size):
        rows = values[bi : bi + block_size]
        for bj in range(bi, n, block_size):
            cols = values[bj : bj + block_size]
            corr = rows @ cols.T / n_samples
            if threshold.include_negative:
                mask = np.abs(corr) >= cutoff
            else:
                mask = corr >= cutoff
            ii, jj = np.nonzero(mask)
            for i, j in zip(ii, jj):
                gi = bi + int(i)
                gj = bj + int(j)
                if gj <= gi:
                    continue
                rho = float(np.clip(corr[i, j], -1.0, 1.0))
                pairs.append((genes[gi], genes[gj], rho))
    return pairs


def build_correlation_network(
    matrix: ExpressionMatrix,
    threshold: Optional[CorrelationThreshold] = None,
    block_size: int = 2048,
    include_all_genes: bool = True,
) -> Graph:
    """Build the thresholded gene correlation network.

    Every gene becomes a vertex (in matrix order — this *is* the "natural
    order" of the paper) when ``include_all_genes`` is true; otherwise only
    genes with at least one admitted correlation appear.  Each edge stores the
    correlation coefficient under the ``rho`` attribute.
    """
    graph = Graph()
    if include_all_genes:
        for g in matrix.genes:
            graph.add_vertex(g)
    for ga, gb, rho in correlated_pairs(matrix, threshold=threshold, block_size=block_size):
        graph.add_edge(ga, gb, rho=rho)
    return graph
