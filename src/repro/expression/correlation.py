"""Pearson correlation networks from expression data.

The paper builds its networks by computing the Pearson correlation coefficient
between every pair of genes, keeping pairs with a significant p-value
(p ≤ 0.0005) and a very high correlation (0.95 ≤ |ρ| ≤ 1.0), and connecting the
corresponding genes with an edge.  This module implements that construction:

* :func:`pearson_correlation_matrix` — the full ρ matrix (blocked so that
  tens of thousands of genes do not require an n² intermediate in one piece),
* :func:`correlation_p_value` / :func:`critical_correlation` — the two-sided
  t-distribution significance test for ρ given the sample count,
* :func:`build_correlation_network` — the thresholded network as a
  :class:`repro.graph.Graph` whose edges carry the correlation as a ``rho``
  attribute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats

from ..graph.csr import CSRGraph
from ..graph.graph import Graph
from .microarray import ExpressionMatrix

__all__ = [
    "pearson_correlation_matrix",
    "correlation_p_value",
    "correlation_p_values",
    "critical_correlation",
    "CorrelationThreshold",
    "build_correlation_network",
    "build_correlation_csr",
    "correlated_pairs",
    "correlated_pair_arrays",
    "correlated_pair_arrays_delta",
    "network_from_pair_arrays",
    "csr_from_pair_arrays",
]


def pearson_correlation_matrix(matrix: ExpressionMatrix) -> np.ndarray:
    """Return the full genes × genes Pearson correlation matrix.

    Zero-variance genes yield zero correlation against everything (instead of
    NaN) so the downstream thresholding never picks them up.
    """
    std = matrix.standardized()
    n = std.n_samples
    if n < 2:
        return np.zeros((matrix.n_genes, matrix.n_genes))
    corr = std.values @ std.values.T / n
    np.clip(corr, -1.0, 1.0, out=corr)
    np.fill_diagonal(corr, 1.0)
    return corr


def correlation_p_value(rho: float, n_samples: int) -> float:
    """Two-sided p-value of a Pearson correlation under the null ρ = 0.

    Uses the exact ``t = ρ·sqrt((n−2)/(1−ρ²))`` transform with ``n−2`` degrees
    of freedom.  ``|ρ| = 1`` returns 0.0 and fewer than three samples returns
    1.0 (no power).
    """
    if n_samples < 3:
        return 1.0
    r = max(-1.0, min(1.0, float(rho)))
    if abs(r) >= 1.0:
        return 0.0
    t = abs(r) * math.sqrt((n_samples - 2) / (1.0 - r * r))
    return float(2.0 * stats.t.sf(t, df=n_samples - 2))


def correlation_p_values(rho: np.ndarray, n_samples: int) -> np.ndarray:
    """Vectorised :func:`correlation_p_value`: one ``stats.t.sf`` call per array.

    Element-for-element identical to the scalar function (same clamp, same
    ``t`` transform, same survival function) — the test suite pins the two on
    a grid — but amortises the ``scipy.stats`` dispatch overhead across the
    whole array, which is what per-pair p-value reporting over thousands of
    admitted correlations needs.
    """
    rho = np.asarray(rho, dtype=float)
    if n_samples < 3:
        return np.ones(rho.shape, dtype=float)
    r = np.clip(rho, -1.0, 1.0)
    saturated = np.abs(r) >= 1.0
    safe = np.where(saturated, 0.0, r)
    t = np.abs(safe) * np.sqrt((n_samples - 2) / (1.0 - safe * safe))
    p = 2.0 * stats.t.sf(t, df=n_samples - 2)
    return np.where(saturated, 0.0, p)


def critical_correlation(p_value: float, n_samples: int) -> float:
    """Return the smallest |ρ| whose two-sided p-value is ≤ ``p_value``.

    Convenient for turning the paper's p ≤ 0.0005 criterion into a correlation
    cut-off that can be combined with the explicit 0.95 threshold.
    """
    if n_samples < 3:
        return 1.0
    if not 0.0 < p_value < 1.0:
        raise ValueError("p_value must lie in (0, 1)")
    t_crit = stats.t.isf(p_value / 2.0, df=n_samples - 2)
    return float(t_crit / math.sqrt(n_samples - 2 + t_crit ** 2))


@dataclass(frozen=True)
class CorrelationThreshold:
    """The edge-admission criterion for correlation networks.

    ``min_abs_rho`` is the paper's 0.95 cut-off; ``max_p_value`` its 0.0005
    significance requirement; ``include_negative`` controls whether strong
    *negative* correlations also become edges (the paper keeps only the
    0.95 ≤ ρ ≤ 1.0 band, so the default is ``False``).
    """

    min_abs_rho: float = 0.95
    max_p_value: float = 0.0005
    include_negative: bool = False

    def admits(self, rho: float, n_samples: int) -> bool:
        """Return ``True`` when a correlation passes both criteria.

        With ``include_negative`` the magnitude |ρ| is tested; otherwise the
        signed value is clamped at zero, so negative correlations can only
        pass a (degenerate) ``min_abs_rho`` of 0.0.
        """
        value = abs(rho) if self.include_negative else max(rho, 0.0)
        if value < self.min_abs_rho:
            return False
        return correlation_p_value(rho, n_samples) <= self.max_p_value

    def admits_array(self, rho: np.ndarray, n_samples: int) -> np.ndarray:
        """Vectorised :meth:`admits`: one boolean per correlation.

        Uses :func:`correlation_p_values` so bulk admission tests (e.g.
        re-checking an extracted pair list under a different criterion) cost
        one ``stats.t.sf`` call instead of one per pair.  The tiled network
        extraction itself never needs this — :meth:`effective_cutoff` folds
        the p-value criterion into a single ρ cut-off — so this is the
        per-pair *reporting* path.
        """
        rho = np.asarray(rho, dtype=float)
        value = np.abs(rho) if self.include_negative else np.maximum(rho, 0.0)
        return (value >= self.min_abs_rho) & (
            correlation_p_values(rho, n_samples) <= self.max_p_value
        )

    def effective_cutoff(self, n_samples: int) -> float:
        """Return the binding |ρ| cut-off once the p-value criterion is folded in."""
        return max(self.min_abs_rho, critical_correlation(self.max_p_value, n_samples))


def correlated_pair_arrays(
    matrix: ExpressionMatrix,
    threshold: Optional[CorrelationThreshold] = None,
    block_size: int = 2048,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return every admitted gene pair as three aligned arrays ``(ii, jj, rho)``.

    ``ii``/``jj`` are ``int64`` row indices into ``matrix.genes`` with
    ``ii[k] < jj[k]``; ``rho`` the clipped correlations.  The correlation
    matrix is computed in ``block_size`` × ``block_size`` tiles of the upper
    triangle so the memory footprint stays bounded for large gene sets (the
    paper's CRE network has ~28k genes), and the surviving entries of each
    tile are extracted with one ``nonzero`` + fancy index — no per-pair
    Python loop.  Pair order is *tile order*: tiles row-major, entries
    row-major within a tile (the historical ``correlated_pairs`` order).
    """
    threshold = threshold or CorrelationThreshold()
    std = matrix.standardized()
    n_samples = std.n_samples
    empty = np.empty(0, dtype=np.int64)
    if n_samples < 2 or matrix.n_genes < 2:
        return empty, empty.copy(), np.empty(0, dtype=float)
    cutoff = threshold.effective_cutoff(n_samples)
    values = std.values
    n = matrix.n_genes
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    for bi in range(0, n, block_size):
        rows = values[bi : bi + block_size]
        for bj in range(bi, n, block_size):
            cols = values[bj : bj + block_size]
            corr = rows @ cols.T / n_samples
            if threshold.include_negative:
                mask = np.abs(corr) >= cutoff
            else:
                mask = corr >= cutoff
            if bi == bj:
                # Diagonal tile: keep the strict upper triangle (gj > gi).
                mask = np.triu(mask, k=1)
            ii, jj = np.nonzero(mask)
            if ii.size == 0:
                continue
            out_i.append(ii + bi)
            out_j.append(jj + bj)
            out_r.append(np.clip(corr[ii, jj], -1.0, 1.0))
    if not out_i:
        return empty, empty.copy(), np.empty(0, dtype=float)
    return (
        np.concatenate(out_i),
        np.concatenate(out_j),
        np.concatenate(out_r),
    )


def correlated_pair_arrays_delta(
    matrix: ExpressionMatrix,
    old_n_genes: int,
    cached: tuple[np.ndarray, np.ndarray, np.ndarray],
    threshold: Optional[CorrelationThreshold] = None,
    block_size: int = 2048,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Tile-delta update of :func:`correlated_pair_arrays` after a gene append.

    ``cached`` is the full pair extraction of the first ``old_n_genes`` rows
    of ``matrix`` (same threshold, same ``block_size``); the rows beyond
    ``old_n_genes`` are the appended genes.  Only the tiles whose row or
    column block gained rows are recomputed — a tile is *stable* exactly when
    both its blocks were already full at ``old_n_genes``, because a partial
    block changes the gemm operand shape and BLAS does not promise the shared
    entries come out bit-identical across shapes.  Stable tiles keep their
    cached entries verbatim; recomputed tiles run at the exact shapes the
    cold pass would use; the merge re-establishes cold *tile order* (tiles
    row-major, entries row-major within a tile), so the result is
    bit-identical to a cold :func:`correlated_pair_arrays` over the appended
    matrix — arrays, order and ρ bits.

    Requires the appended rows to standardise independently of the old rows
    (true for gene appends: standardisation is per-row); a *sample* append
    changes every standardised row and must recompute from cold.
    """
    threshold = threshold or CorrelationThreshold()
    n = matrix.n_genes
    if not 0 <= old_n_genes <= n:
        raise ValueError(f"old_n_genes {old_n_genes} out of range for {n} genes")
    std = matrix.standardized()
    n_samples = std.n_samples
    empty = np.empty(0, dtype=np.int64)
    if n_samples < 2 or n < 2:
        return empty, empty.copy(), np.empty(0, dtype=float)
    old_ii, old_jj, old_rho = cached
    # Stable tile ⇔ both blocks full in the old pass.
    keep = ((old_ii // block_size + 1) * block_size <= old_n_genes) & (
        (old_jj // block_size + 1) * block_size <= old_n_genes
    )
    out_i: list[np.ndarray] = [old_ii[keep]]
    out_j: list[np.ndarray] = [old_jj[keep]]
    out_r: list[np.ndarray] = [old_rho[keep]]
    cutoff = threshold.effective_cutoff(n_samples)
    values = std.values
    for bi in range(0, n, block_size):
        rows = values[bi : bi + block_size]
        for bj in range(bi, n, block_size):
            if bi + block_size <= old_n_genes and bj + block_size <= old_n_genes:
                continue  # stable tile: cached entries reused verbatim
            cols = values[bj : bj + block_size]
            corr = rows @ cols.T / n_samples
            if threshold.include_negative:
                mask = np.abs(corr) >= cutoff
            else:
                mask = corr >= cutoff
            if bi == bj:
                mask = np.triu(mask, k=1)
            ii, jj = np.nonzero(mask)
            if ii.size == 0:
                continue
            out_i.append(ii + bi)
            out_j.append(jj + bj)
            out_r.append(np.clip(corr[ii, jj], -1.0, 1.0))
    ii = np.concatenate(out_i)
    jj = np.concatenate(out_j)
    rho = np.concatenate(out_r)
    order = np.lexsort((jj, ii, jj // block_size, ii // block_size))
    return ii[order], jj[order], rho[order]


def correlated_pairs(
    matrix: ExpressionMatrix,
    threshold: Optional[CorrelationThreshold] = None,
    block_size: int = 2048,
) -> list[tuple[str, str, float]]:
    """Return every gene pair passing the threshold as ``(gene_a, gene_b, rho)``.

    Label-level convenience wrapper over :func:`correlated_pair_arrays` —
    same pairs, same (tile) order, gene names instead of row indices.
    """
    ii, jj, rho = correlated_pair_arrays(matrix, threshold=threshold, block_size=block_size)
    genes = matrix.genes
    return [
        (genes[i], genes[j], r)
        for i, j, r in zip(ii.tolist(), jj.tolist(), rho.tolist())
    ]


def _first_appearance_order(ii: np.ndarray, jj: np.ndarray) -> np.ndarray:
    """Vertex indices in order of first appearance in the pair list.

    Mirrors the vertex insertion order of a :class:`Graph` built by calling
    ``add_edge`` over the pairs in order (each edge introduces first its
    smaller then its larger endpoint).
    """
    seq = np.empty(ii.shape[0] * 2, dtype=np.int64)
    seq[0::2] = ii
    seq[1::2] = jj
    uniq, first = np.unique(seq, return_index=True)
    return uniq[np.argsort(first, kind="stable")]


def csr_from_pair_arrays(
    matrix: ExpressionMatrix,
    ii: np.ndarray,
    jj: np.ndarray,
    include_all_genes: bool = True,
) -> CSRGraph:
    """Build the :class:`CSRGraph` of a thresholded pair list — no ``Graph``.

    The result is bit-identical to ``CSRGraph.from_graph`` applied to the
    corresponding :func:`build_correlation_network` output: all genes in
    matrix order (or, with ``include_all_genes=False``, the connected genes
    in first-appearance order) and per-vertex neighbour rows in ascending
    gene order — ``from_edge_arrays`` sorts rows ascending regardless of
    input order, which is exactly the neighbour order tile-ordered
    ``add_edge`` calls produce, because within the upper triangle tile order
    visits each vertex's incident pairs by ascending partner index.
    """
    csr = CSRGraph.from_edge_arrays(matrix.genes, ii, jj)
    if include_all_genes:
        return csr
    return csr.induced_subgraph(_first_appearance_order(ii, jj))


def network_from_pair_arrays(
    matrix: ExpressionMatrix,
    ii: np.ndarray,
    jj: np.ndarray,
    rho: np.ndarray,
    include_all_genes: bool = True,
) -> Graph:
    """Materialise the label :class:`Graph` of a thresholded pair list.

    Vertex and neighbour iteration order match the historical per-pair
    construction (see :func:`csr_from_pair_arrays`); each edge carries its
    correlation as the ``rho`` attribute.
    """
    genes = matrix.genes
    graph = Graph()
    if include_all_genes:
        for g in genes:
            graph.add_vertex(g)
    else:
        for i in _first_appearance_order(ii, jj).tolist():
            graph.add_vertex(genes[i])
    order = np.lexsort((jj, ii))
    for i, j, r in zip(
        ii[order].tolist(), jj[order].tolist(), rho[order].tolist()
    ):
        graph.add_edge(genes[i], genes[j], rho=r)
    return graph


def build_correlation_network(
    matrix: ExpressionMatrix,
    threshold: Optional[CorrelationThreshold] = None,
    block_size: int = 2048,
    include_all_genes: bool = True,
) -> Graph:
    """Build the thresholded gene correlation network.

    Every gene becomes a vertex (in matrix order — this *is* the "natural
    order" of the paper) when ``include_all_genes`` is true; otherwise only
    genes with at least one admitted correlation appear.  Each edge stores the
    correlation coefficient under the ``rho`` attribute.

    Thin label wrapper over the vectorised extraction: the pair arrays come
    from :func:`correlated_pair_arrays` and only the ``Graph`` materialisation
    itself is per-edge.  Use :func:`build_correlation_csr` to skip that
    materialisation entirely.
    """
    ii, jj, rho = correlated_pair_arrays(matrix, threshold=threshold, block_size=block_size)
    return network_from_pair_arrays(matrix, ii, jj, rho, include_all_genes=include_all_genes)


def build_correlation_csr(
    matrix: ExpressionMatrix,
    threshold: Optional[CorrelationThreshold] = None,
    block_size: int = 2048,
    include_all_genes: bool = True,
) -> CSRGraph:
    """Build the thresholded correlation network directly as a :class:`CSRGraph`.

    Same network as :func:`build_correlation_network` (gene labels retained,
    ``CSRGraph.from_graph`` of that graph compares equal) but constructed
    straight from the correlation tiles by array ops — no per-pair loop, no
    ``Graph.add_edge``.  Correlation values are not carried (CSR is the
    attribute-free compute view); build the label graph when ``rho`` is
    needed.
    """
    ii, jj, _rho = correlated_pair_arrays(matrix, threshold=threshold, block_size=block_size)
    return csr_from_pair_arrays(matrix, ii, jj, include_all_genes=include_all_genes)
