"""Tab-separated I/O for expression matrices.

GEO series matrices are conventionally exchanged as TSV files with genes in
rows and samples in columns (plus an optional condition header line).  These
helpers let the examples persist generated studies and let users run the
pipeline on their own matrices without writing parsing code.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from .microarray import ExpressionMatrix

__all__ = ["write_expression_tsv", "read_expression_tsv"]

PathLike = Union[str, os.PathLike]


def write_expression_tsv(
    matrix: ExpressionMatrix,
    target: Union[PathLike, TextIO],
    float_format: str = "%.6g",
    include_conditions: bool = True,
) -> None:
    """Write a matrix as TSV: header row of samples, optional condition row, one row per gene."""
    handle, should_close = _open_for_write(target)
    try:
        handle.write("gene\t" + "\t".join(matrix.samples) + "\n")
        if include_conditions and matrix.conditions is not None:
            handle.write("#condition\t" + "\t".join(matrix.conditions) + "\n")
        for gene, row in zip(matrix.genes, matrix.values):
            formatted = "\t".join(float_format % x for x in row)
            handle.write(f"{gene}\t{formatted}\n")
    finally:
        if should_close:
            handle.close()


def read_expression_tsv(source: Union[PathLike, TextIO]) -> ExpressionMatrix:
    """Read a matrix written by :func:`write_expression_tsv`.

    The first line must be the sample header; an optional ``#condition`` line
    provides per-sample condition labels; every other non-empty, non-comment
    line is ``gene<TAB>value…``.
    """
    handle, should_close = _open_for_read(source)
    try:
        header = handle.readline().rstrip("\n")
        if not header:
            raise ValueError("empty expression file")
        columns = header.split("\t")
        if columns[0].lower() not in ("gene", "genes", "probe", "id"):
            raise ValueError("expression TSV must start with a 'gene<TAB>sample…' header line")
        samples = columns[1:]
        conditions: list[str] | None = None
        genes: list[str] = []
        rows: list[list[float]] = []
        for raw in handle:
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("#condition"):
                conditions = line.split("\t")[1:]
                continue
            if line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != len(samples) + 1:
                raise ValueError(
                    f"row for gene {parts[0]!r} has {len(parts) - 1} values, expected {len(samples)}"
                )
            genes.append(parts[0])
            rows.append([float(x) for x in parts[1:]])
    finally:
        if should_close:
            handle.close()
    if not genes:
        raise ValueError("expression file contains no gene rows")
    return ExpressionMatrix(
        values=np.array(rows, dtype=float),
        genes=genes,
        samples=samples,
        conditions=conditions,
    )


def _open_for_write(target: Union[PathLike, TextIO]):
    if hasattr(target, "write"):
        return target, False
    return open(Path(target), "w", encoding="utf-8"), True


def _open_for_read(source: Union[PathLike, TextIO]):
    if hasattr(source, "read"):
        return source, False
    return open(Path(source), "r", encoding="utf-8"), True
