"""Expression-matrix container.

A microarray experiment yields a genes × samples matrix of expression levels.
:class:`ExpressionMatrix` wraps a NumPy array together with gene and sample
labels and provides the handful of operations the pipeline needs: subsetting
by genes/samples, splitting by experimental condition (the paper splits
GSE5078 into YNG/MID and GSE5140 into UNT/CRE), per-gene standardisation and
variance screening.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["ExpressionMatrix"]


@dataclass
class ExpressionMatrix:
    """A genes × samples expression matrix with labelled axes.

    Attributes
    ----------
    values:
        float array of shape ``(n_genes, n_samples)``.
    genes:
        gene identifiers, one per row.
    samples:
        sample identifiers, one per column.
    conditions:
        optional per-sample condition labels (e.g. ``"YNG"`` / ``"MID"``)
        used by :meth:`split_by_condition`.
    """

    values: np.ndarray
    genes: list[str]
    samples: list[str]
    conditions: Optional[list[str]] = None
    metadata: dict = field(default_factory=dict)
    #: Memoised result of :meth:`standardized` (invalidation-free: matrices
    #: are treated as immutable after construction — every transform returns
    #: a new instance).  Excluded from comparison/repr.
    _standardized: Optional["ExpressionMatrix"] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 2:
            raise ValueError("expression values must be a 2-D array (genes × samples)")
        if self.values.shape[0] != len(self.genes):
            raise ValueError(
                f"{self.values.shape[0]} rows but {len(self.genes)} gene labels"
            )
        if self.values.shape[1] != len(self.samples):
            raise ValueError(
                f"{self.values.shape[1]} columns but {len(self.samples)} sample labels"
            )
        if self.conditions is not None and len(self.conditions) != len(self.samples):
            raise ValueError("conditions must have one entry per sample")
        if len(set(self.genes)) != len(self.genes):
            raise ValueError("gene labels must be unique")

    # ------------------------------------------------------------------
    @property
    def n_genes(self) -> int:
        return self.values.shape[0]

    @property
    def n_samples(self) -> int:
        return self.values.shape[1]

    def gene_index(self, gene: str) -> int:
        """Return the row index of ``gene`` (raises ``KeyError`` when absent)."""
        try:
            return self.genes.index(gene)
        except ValueError:
            raise KeyError(f"gene {gene!r} not in matrix") from None

    def expression_of(self, gene: str) -> np.ndarray:
        """Return the expression vector of one gene (view, do not mutate)."""
        return self.values[self.gene_index(gene)]

    # ------------------------------------------------------------------
    # subsetting
    # ------------------------------------------------------------------
    def subset_genes(self, genes: Iterable[str]) -> "ExpressionMatrix":
        """Return a new matrix restricted to ``genes`` (in the given order)."""
        genes = list(genes)
        index = {g: i for i, g in enumerate(self.genes)}
        missing = [g for g in genes if g not in index]
        if missing:
            raise KeyError(f"genes not in matrix: {missing[:5]}{'…' if len(missing) > 5 else ''}")
        rows = [index[g] for g in genes]
        return ExpressionMatrix(
            values=self.values[rows, :].copy(),
            genes=genes,
            samples=list(self.samples),
            conditions=list(self.conditions) if self.conditions else None,
            metadata=dict(self.metadata),
        )

    def subset_samples(self, samples: Sequence[str]) -> "ExpressionMatrix":
        """Return a new matrix restricted to ``samples`` (in the given order)."""
        index = {s: i for i, s in enumerate(self.samples)}
        missing = [s for s in samples if s not in index]
        if missing:
            raise KeyError(f"samples not in matrix: {missing}")
        cols = [index[s] for s in samples]
        return ExpressionMatrix(
            values=self.values[:, cols].copy(),
            genes=list(self.genes),
            samples=list(samples),
            conditions=[self.conditions[c] for c in cols] if self.conditions else None,
            metadata=dict(self.metadata),
        )

    def split_by_condition(self) -> dict[str, "ExpressionMatrix"]:
        """Split into one matrix per condition label (paper: age / treatment groups)."""
        if not self.conditions:
            raise ValueError("matrix has no condition labels to split on")
        out: dict[str, ExpressionMatrix] = {}
        for cond in dict.fromkeys(self.conditions):
            samples = [s for s, c in zip(self.samples, self.conditions) if c == cond]
            out[cond] = self.subset_samples(samples)
        return out

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def standardized(self) -> "ExpressionMatrix":
        """Return a copy with each gene scaled to zero mean and unit variance.

        Genes with zero variance are left at zero (they carry no correlation
        signal and would otherwise produce NaNs).

        The result is memoised on the matrix: every correlation pass starts
        by standardising (:func:`~repro.expression.correlation.pearson_correlation_matrix`,
        :func:`~repro.expression.correlation.correlated_pair_arrays`), and a
        study is correlated repeatedly — both network views, every
        threshold.  Matrices are treated as immutable after construction, so
        the cache needs no invalidation; a standardised matrix memoises
        itself (standardising is idempotent up to the zero-variance rule
        already applied).
        """
        cached = self._standardized
        if cached is not None:
            return cached
        centered = self.values - self.values.mean(axis=1, keepdims=True)
        std = self.values.std(axis=1, keepdims=True)
        safe = np.where(std > 0, std, 1.0)
        scaled = np.where(std > 0, centered / safe, 0.0)
        result = ExpressionMatrix(
            values=scaled,
            genes=list(self.genes),
            samples=list(self.samples),
            conditions=list(self.conditions) if self.conditions else None,
            metadata=dict(self.metadata),
        )
        # Enforce the immutability the memo relies on: once a standardised
        # view exists, in-place writes to either value array raise instead of
        # silently serving stale correlations.
        self.values.setflags(write=False)
        result.values.setflags(write=False)
        self._standardized = result
        return result

    # ------------------------------------------------------------------
    # structural-sharing appends (the incremental-recompute substrate)
    # ------------------------------------------------------------------
    def with_samples(
        self,
        values: np.ndarray,
        samples: Sequence[str],
        conditions: Optional[Sequence[str]] = None,
    ) -> "ExpressionMatrix":
        """Return a new matrix with extra sample columns appended.

        ``values`` must be ``(n_genes, k)``.  The standardised memo cannot be
        carried over — appending a sample changes every gene's mean and
        standard deviation — so the returned matrix standardises from cold on
        first use (see :mod:`repro.incremental` for the delta-vs-rebuild
        decision table).
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[0] != self.n_genes:
            raise ValueError(
                f"sample append must be (n_genes, k), got {values.shape} for {self.n_genes} genes"
            )
        samples = list(samples)
        if values.shape[1] != len(samples):
            raise ValueError(f"{values.shape[1]} new columns but {len(samples)} sample labels")
        if conditions is None and self.conditions is not None:
            conditions = [self.conditions[-1]] * len(samples)
        merged_conditions = (
            list(self.conditions) + list(conditions) if self.conditions else None
        )
        return ExpressionMatrix(
            values=np.concatenate([self.values, values], axis=1),
            genes=list(self.genes),
            samples=list(self.samples) + samples,
            conditions=merged_conditions,
            metadata=dict(self.metadata),
        )

    def with_genes(self, values: np.ndarray, genes: Sequence[str]) -> "ExpressionMatrix":
        """Return a new matrix with extra gene rows appended.

        ``values`` must be ``(k, n_samples)``.  Standardisation is per-row, so
        when this matrix already carries a standardised memo the appended
        matrix's memo is **delta-extended**: only the new rows are
        standardised and stacked under the cached rows — bit-identical to a
        cold :meth:`standardized` pass over the whole appended matrix.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != self.n_samples:
            raise ValueError(
                f"gene append must be (k, n_samples), got {values.shape} for {self.n_samples} samples"
            )
        genes = list(genes)
        if values.shape[0] != len(genes):
            raise ValueError(f"{values.shape[0]} new rows but {len(genes)} gene labels")
        result = ExpressionMatrix(
            values=np.concatenate([self.values, values], axis=0),
            genes=list(self.genes) + genes,
            samples=list(self.samples),
            conditions=list(self.conditions) if self.conditions else None,
            metadata=dict(self.metadata),
        )
        cached = self._standardized
        if cached is not None:
            centered = values - values.mean(axis=1, keepdims=True)
            std = values.std(axis=1, keepdims=True)
            safe = np.where(std > 0, std, 1.0)
            scaled = np.where(std > 0, centered / safe, 0.0)
            memo = ExpressionMatrix(
                values=np.concatenate([cached.values, scaled], axis=0),
                genes=list(result.genes),
                samples=list(result.samples),
                conditions=list(result.conditions) if result.conditions else None,
                metadata=dict(result.metadata),
            )
            result.values.setflags(write=False)
            memo.values.setflags(write=False)
            result._standardized = memo
        return result

    def gene_variances(self) -> np.ndarray:
        """Return the per-gene expression variance."""
        return self.values.var(axis=1)

    def top_variance_genes(self, fraction: float) -> list[str]:
        """Return the ``fraction`` of genes with the highest expression variance.

        Mirrors the statistical pre-selection the paper applies to GSE5078
        ("about 33% of the total possible genes").
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must lie in (0, 1]")
        k = max(1, int(round(fraction * self.n_genes)))
        order = np.argsort(self.gene_variances())[::-1][:k]
        keep = sorted(order)
        return [self.genes[i] for i in keep]
