"""Synthetic microarray studies standing in for the paper's GEO datasets.

The paper evaluates on four networks derived from two GEO series:

* **GSE5078** (Verbitsky et al., hippocampus ageing) split into **YNG**
  (young mice) and **MID** (middle-aged mice).  The series was pre-filtered to
  roughly a third of the genes (only those differentially expressed between
  the two ages), producing a comparatively small network — the paper reports
  5,348 vertices and 7,277 edges for YNG — whose clusters carry weaker
  biological signal.
* **GSE5140** (Bender et al., creatine supplementation) split into **UNT**
  (untreated) and **CRE** (creatine-treated) middle-aged mice.  These use the
  whole transcriptome; the CRE network has 27,896 vertices and 30,296 edges.

The raw chips are not available offline, so this module *generates* expression
matrices whose thresholded correlation networks have the same character:

* a small number of dense co-expression **modules** (the biologically "real"
  clusters, planted and therefore known exactly),
* noisy **chains** — consecutive genes correlate just above the 0.95
  threshold while genes two steps apart fall below it, which is what produces
  the long paths and large cycles the chordal filter prunes,
* noisy **clumps** — small groups of genes sharing a coincidental factor;
  these become the dense-but-biologically-meaningless clusters (low AEES,
  high overlap: the paper's "false positives"),
* spurious **attachments** hanging off real modules (the extra genes the
  Figure 9 case study shows being trimmed away by the filter).

Note that a 0.95 correlation threshold makes the network highly transitive
(two strong partners of the same gene are themselves correlated ≥ 0.8), so
noise cannot appear as isolated random edges between otherwise unrelated
genes; chains and clumps are the realistic noise geometries and the generator
builds exactly those.

Every generated study records its ground truth (module membership, noise
edges) so the ontology annotations and the evaluation can be tied back to it.
Sizes are controlled by a ``scale`` parameter: ``scale=1.0`` approximates the
paper's vertex counts, while the benchmark configuration uses a smaller scale
so the full pipeline runs in seconds (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.graph import Graph, edge_key
from .correlation import (
    CorrelationThreshold,
    correlated_pair_arrays,
    csr_from_pair_arrays,
    network_from_pair_arrays,
)
from .microarray import ExpressionMatrix

__all__ = [
    "StudyConfig",
    "SyntheticStudy",
    "generate_study",
    "make_study",
    "DATASET_CONFIGS",
    "dataset_names",
]


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of one synthetic study (one condition of one GEO series).

    Attributes
    ----------
    name:
        dataset name used throughout the repo (``YNG``, ``MID``, ``UNT``, ``CRE``).
    n_genes:
        total number of genes on the (synthetic) chip.
    n_samples:
        number of arrays; the paper's series have on the order of 10–12
        arrays per condition — few enough that coincidental 0.95 correlations
        are plentiful, which is the noise the filter must remove.
    n_modules / module_size / module_tightness:
        number, size and within-module noise level of the planted
        co-expression modules (smaller tightness = denser module in the
        thresholded network).
    n_noise_chains / noise_chain_length:
        number and length of correlated noise chains.
    n_noise_clumps / noise_clump_size / clump_tightness:
        number, size and tightness of coincidental clumps (false clusters).
    n_module_attachments:
        number of background genes spuriously correlated with one member of a
        planted module.
    biological_signal:
        overall strength (0–1) of the functional signal, consumed by the
        ontology annotation generator; YNG/MID use a lower value to mimic the
        weaker enrichment the paper observes after differential-expression
        pre-filtering.
    """

    name: str
    n_genes: int
    n_samples: int
    n_modules: int
    module_size: int
    module_tightness: float
    n_noise_chains: int
    noise_chain_length: int
    n_noise_clumps: int
    noise_clump_size: int
    clump_tightness: float
    n_module_attachments: int
    biological_signal: float = 1.0

    def scaled(self, scale: float) -> "StudyConfig":
        """Return a copy with the study shrunk (or grown) by ``scale``.

        Gene counts and chain counts scale linearly; the numbers of planted
        modules and noise clumps scale with the square root of ``scale`` so
        that reduced-scale studies still contain enough distinct clusters for
        the per-cluster analyses (Figures 4–9) to be meaningful.
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        sqrt_scale = math.sqrt(scale)

        def s(x: int, factor: float, minimum: int = 1) -> int:
            return max(minimum, int(round(x * factor)))

        return StudyConfig(
            name=self.name,
            n_genes=s(self.n_genes, scale, 32),
            n_samples=self.n_samples,
            n_modules=s(self.n_modules, sqrt_scale, 2),
            module_size=self.module_size,
            module_tightness=self.module_tightness,
            n_noise_chains=s(self.n_noise_chains, scale, 2),
            noise_chain_length=self.noise_chain_length,
            n_noise_clumps=s(self.n_noise_clumps, sqrt_scale, 1),
            noise_clump_size=self.noise_clump_size,
            clump_tightness=self.clump_tightness,
            n_module_attachments=s(self.n_module_attachments, scale, 1),
            biological_signal=self.biological_signal,
        )

    def background_genes_required(self) -> int:
        """Number of background genes the noise structures consume."""
        return (
            self.n_noise_chains * self.noise_chain_length
            + self.n_noise_clumps * self.noise_clump_size
            + self.n_module_attachments
        )


#: Canned configurations approximating the paper's four networks at scale 1.0.
DATASET_CONFIGS: dict[str, StudyConfig] = {
    # GSE5078 — young mice.  Pre-filtered series: fewer genes, weaker signal.
    "YNG": StudyConfig(
        name="YNG",
        n_genes=5400,
        n_samples=12,
        n_modules=10,
        module_size=12,
        module_tightness=0.22,
        n_noise_chains=580,
        noise_chain_length=6,
        n_noise_clumps=140,
        noise_clump_size=8,
        clump_tightness=0.235,
        n_module_attachments=420,
        biological_signal=0.8,
    ),
    # GSE5078 — middle-aged mice.
    "MID": StudyConfig(
        name="MID",
        n_genes=5400,
        n_samples=12,
        n_modules=9,
        module_size=12,
        module_tightness=0.24,
        n_noise_chains=560,
        noise_chain_length=6,
        n_noise_clumps=130,
        noise_clump_size=8,
        clump_tightness=0.24,
        n_module_attachments=400,
        biological_signal=0.75,
    ),
    # GSE5140 — untreated middle-aged mice (whole transcriptome).
    "UNT": StudyConfig(
        name="UNT",
        n_genes=27000,
        n_samples=10,
        n_modules=28,
        module_size=14,
        module_tightness=0.17,
        n_noise_chains=3400,
        noise_chain_length=7,
        n_noise_clumps=240,
        noise_clump_size=9,
        clump_tightness=0.225,
        n_module_attachments=900,
        biological_signal=0.9,
    ),
    # GSE5140 — creatine-supplemented middle-aged mice.
    "CRE": StudyConfig(
        name="CRE",
        n_genes=27900,
        n_samples=10,
        n_modules=30,
        module_size=14,
        module_tightness=0.17,
        n_noise_chains=3550,
        noise_chain_length=7,
        n_noise_clumps=250,
        noise_clump_size=9,
        clump_tightness=0.225,
        n_module_attachments=950,
        biological_signal=0.95,
    ),
}


def dataset_names() -> list[str]:
    """Return the four dataset names in the paper's order."""
    return ["YNG", "MID", "UNT", "CRE"]


@dataclass
class SyntheticStudy:
    """One generated study: expression matrix, ground truth and derived network."""

    config: StudyConfig
    matrix: ExpressionMatrix
    modules: dict[str, list[str]]
    noise_clumps: list[list[str]] = field(default_factory=list)
    noise_edges_hint: list[tuple[str, str]] = field(default_factory=list)
    seed: int = 0
    _network: Optional[Graph] = field(default=None, repr=False)
    _network_csr: Optional[CSRGraph] = field(default=None, repr=False)
    _pairs: dict[CorrelationThreshold, tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=dict, repr=False
    )

    @property
    def name(self) -> str:
        return self.config.name

    def module_of(self) -> dict[str, str]:
        """Return gene → module-name for every planted module member."""
        out: dict[str, str] = {}
        for mod, members in self.modules.items():
            for g in members:
                out[g] = mod
        return out

    def _pair_arrays(
        self, threshold: Optional[CorrelationThreshold], rebuild: bool = False
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The thresholded pair arrays, cached per threshold.

        One correlation-tile pass serves both :meth:`network` and
        :meth:`network_csr`, so preparing a label view and a CSR view of the
        same study never recomputes the genes × genes correlations — for the
        default threshold or any explicit one (the frozen dataclass is the
        cache key).
        """
        key = threshold or CorrelationThreshold()
        if not rebuild:
            cached = self._pairs.get(key)
            if cached is not None:
                return cached
        pairs = correlated_pair_arrays(self.matrix, threshold=key)
        self._pairs[key] = pairs
        return pairs

    def network(
        self,
        threshold: Optional[CorrelationThreshold] = None,
        include_all_genes: bool = False,
        rebuild: bool = False,
    ) -> Graph:
        """Return (and cache) the thresholded correlation network of this study."""
        use_cache = threshold is None and not include_all_genes
        if use_cache and self._network is not None and not rebuild:
            return self._network
        ii, jj, rho = self._pair_arrays(threshold, rebuild=rebuild)
        net = network_from_pair_arrays(
            self.matrix, ii, jj, rho, include_all_genes=include_all_genes
        )
        if use_cache:
            self._network = net
        return net

    def network_csr(
        self,
        threshold: Optional[CorrelationThreshold] = None,
        include_all_genes: bool = False,
        rebuild: bool = False,
    ) -> CSRGraph:
        """Return (and cache) the CSR view of the thresholded correlation network.

        Built directly from the cached pair arrays — no ``Graph``
        materialisation, no ``from_graph`` conversion.  Equal to
        ``CSRGraph.from_graph(self.network(...))`` for the same arguments.
        """
        use_cache = threshold is None and not include_all_genes
        if use_cache and self._network_csr is not None and not rebuild:
            return self._network_csr
        ii, jj, _rho = self._pair_arrays(threshold, rebuild=rebuild)
        csr = csr_from_pair_arrays(
            self.matrix, ii, jj, include_all_genes=include_all_genes
        )
        if use_cache:
            self._network_csr = csr
        return csr

    def true_module_edges(self) -> set[tuple[str, str]]:
        """Return every within-module gene pair as canonical edges (ground truth)."""
        edges: set[tuple[str, str]] = set()
        for members in self.modules.values():
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    edges.add(edge_key(a, b))
        return edges


def _module_gene_name(study: str, module: int, index: int) -> str:
    return f"{study}_M{module:02d}_{index:02d}"


def _background_gene_name(study: str, index: int) -> str:
    return f"{study}_G{index:05d}"


def generate_study(config: StudyConfig, seed: int = 0) -> SyntheticStudy:
    """Generate one synthetic study according to ``config``.

    The expression model is additive-Gaussian: every planted module (and every
    noise clump) shares a latent factor; member genes observe the factor plus
    private noise, so within-group correlations sit just above the paper's
    0.95 threshold.  Noise chains are built link by link: each gene is a
    mixture of its predecessor and fresh noise with mixing coefficient ≈ 0.952,
    so consecutive genes pass the threshold while genes two steps apart fall
    to ≈ 0.9 and do not.
    """
    rng = np.random.default_rng(seed)
    n_samples = config.n_samples
    gene_rows: list[np.ndarray] = []
    gene_names: list[str] = []
    modules: dict[str, list[str]] = {}
    noise_clumps: list[list[str]] = []
    noise_edges: list[tuple[str, str]] = []

    def add_gene(name: str, values: np.ndarray) -> None:
        gene_names.append(name)
        gene_rows.append(values)

    def group_rows(size: int, tightness: float) -> list[np.ndarray]:
        """Rows for a co-expressed group: shared factor + jittered private noise."""
        factor = rng.standard_normal(n_samples)
        rows = []
        for _ in range(size):
            jitter = 1.0 + 0.3 * rng.random()
            rows.append(factor + rng.standard_normal(n_samples) * tightness * jitter)
        return rows

    # --- planted co-expression modules -------------------------------------
    for m in range(config.n_modules):
        members: list[str] = []
        module_name = f"{config.name}_module_{m:02d}"
        for i, row in enumerate(group_rows(config.module_size, config.module_tightness)):
            add_gene(_module_gene_name(config.name, m, i), row)
            members.append(gene_names[-1])
        modules[module_name] = members

    n_structured = len(gene_names)
    background_needed = config.background_genes_required()
    n_background = max(background_needed, config.n_genes - n_structured)
    next_background = 0

    def new_background_gene(values: np.ndarray) -> str:
        nonlocal next_background
        name = _background_gene_name(config.name, next_background)
        next_background += 1
        add_gene(name, values)
        return name

    def chained_row(previous: np.ndarray, rho: float) -> np.ndarray:
        """A row correlated ≈ rho with ``previous`` and otherwise independent."""
        prev_std = (previous - previous.mean()) / (previous.std() + 1e-12)
        fresh = rng.standard_normal(n_samples)
        fresh -= fresh.mean()
        fresh -= (fresh @ prev_std / n_samples) * prev_std
        fresh /= fresh.std() + 1e-12
        return rho * prev_std + math.sqrt(max(0.0, 1.0 - rho * rho)) * fresh

    # --- noisy chains ---------------------------------------------------------
    for _ in range(config.n_noise_chains):
        length = max(2, config.noise_chain_length)
        prev_row = rng.standard_normal(n_samples)
        prev_name = new_background_gene(prev_row)
        for _ in range(length - 1):
            rho = 0.952 + 0.02 * rng.random()
            row = chained_row(prev_row, rho)
            name = new_background_gene(row)
            noise_edges.append(edge_key(prev_name, name))
            prev_name, prev_row = name, row

    # --- noisy clumps (coincidental dense groups) -----------------------------
    for _ in range(config.n_noise_clumps):
        clump: list[str] = []
        for row in group_rows(config.noise_clump_size, config.clump_tightness):
            clump.append(new_background_gene(row))
        noise_clumps.append(clump)
        for i, a in enumerate(clump):
            for b in clump[i + 1 :]:
                noise_edges.append(edge_key(a, b))

    # --- spurious attachments to real modules --------------------------------
    module_members = [g for members in modules.values() for g in members]
    name_index = {n: i for i, n in enumerate(gene_names)}
    for _ in range(config.n_module_attachments):
        target = module_members[int(rng.integers(0, len(module_members)))]
        rho = 0.953 + 0.03 * rng.random()
        row = chained_row(gene_rows[name_index[target]], rho)
        name = new_background_gene(row)
        noise_edges.append(edge_key(target, name))

    # --- unstructured background genes ----------------------------------------
    while next_background < n_background:
        new_background_gene(rng.standard_normal(n_samples))

    # Shuffle the chip order.  Real arrays list probes by nomenclature, not by
    # functional module, so the "natural order" of the network must not align
    # with the planted structure (otherwise block partitioning would see
    # artificially few border edges and the ordering study would be biased).
    perm = rng.permutation(len(gene_names))
    gene_names = [gene_names[i] for i in perm]
    gene_rows = [gene_rows[i] for i in perm]

    values = np.vstack(gene_rows)
    matrix = ExpressionMatrix(
        values=values,
        genes=gene_names,
        samples=[f"{config.name}_sample_{i:02d}" for i in range(n_samples)],
        conditions=[config.name] * n_samples,
        metadata={"config": config.name, "seed": seed},
    )
    return SyntheticStudy(
        config=config,
        matrix=matrix,
        modules=modules,
        noise_clumps=noise_clumps,
        noise_edges_hint=noise_edges,
        seed=seed,
    )


def make_study(name: str, scale: float = 1.0, seed: Optional[int] = None) -> SyntheticStudy:
    """Generate one of the four canned studies (``YNG``, ``MID``, ``UNT``, ``CRE``).

    ``scale`` multiplies the structure counts (1.0 ≈ the paper's sizes);
    ``seed`` defaults to a per-dataset constant so repeated calls yield
    identical data.
    """
    key = name.strip().upper()
    if key not in DATASET_CONFIGS:
        raise KeyError(f"unknown dataset {name!r}; valid: {dataset_names()}")
    config = DATASET_CONFIGS[key].scaled(scale)
    if seed is None:
        seed = {"YNG": 51, "MID": 52, "UNT": 53, "CRE": 54}[key]
    return generate_study(config, seed=seed)
