"""Expression preprocessing: differential-expression screening.

The paper notes that GSE5078 was reduced to "about 33% of the total possible
genes", keeping only genes differentially expressed between the young (YNG)
and middle-aged (MID) conditions, and observes that this preprocessing *hurts*
the ability to find biologically significant clusters.  This module implements
the screening so that the effect can be reproduced and ablated:

* :func:`differential_expression_scores` — per-gene Welch t-statistics between
  two condition matrices,
* :func:`select_differential_genes` — the top fraction of genes by |t|,
* :func:`apply_differential_filter` — restrict both matrices to that gene set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .microarray import ExpressionMatrix

__all__ = [
    "DifferentialExpressionResult",
    "differential_expression_scores",
    "select_differential_genes",
    "apply_differential_filter",
]


@dataclass
class DifferentialExpressionResult:
    """Per-gene differential expression statistics between two conditions."""

    genes: list[str]
    t_statistics: np.ndarray
    p_values: np.ndarray

    def top_fraction(self, fraction: float) -> list[str]:
        """Return the ``fraction`` of genes with the largest |t| (original order)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must lie in (0, 1]")
        k = max(1, int(round(fraction * len(self.genes))))
        order = np.argsort(-np.abs(self.t_statistics))[:k]
        keep = sorted(order)
        return [self.genes[i] for i in keep]


def differential_expression_scores(
    condition_a: ExpressionMatrix, condition_b: ExpressionMatrix
) -> DifferentialExpressionResult:
    """Welch t-test per gene between two condition matrices.

    Both matrices must cover the same genes in the same order.  Genes with
    zero variance in both conditions get a t-statistic of 0 and p-value 1.
    """
    if condition_a.genes != condition_b.genes:
        raise ValueError("both conditions must cover the same genes in the same order")
    a = condition_a.values
    b = condition_b.values
    with np.errstate(divide="ignore", invalid="ignore"):
        t, p = stats.ttest_ind(a, b, axis=1, equal_var=False)
    t = np.nan_to_num(np.asarray(t, dtype=float), nan=0.0)
    p = np.nan_to_num(np.asarray(p, dtype=float), nan=1.0)
    return DifferentialExpressionResult(genes=list(condition_a.genes), t_statistics=t, p_values=p)


def select_differential_genes(
    condition_a: ExpressionMatrix,
    condition_b: ExpressionMatrix,
    fraction: float = 0.33,
) -> list[str]:
    """Return the most differentially expressed ``fraction`` of genes.

    The default fraction matches the paper's "about 33%" description of the
    GSE5078 preprocessing.
    """
    return differential_expression_scores(condition_a, condition_b).top_fraction(fraction)


def apply_differential_filter(
    condition_a: ExpressionMatrix,
    condition_b: ExpressionMatrix,
    fraction: float = 0.33,
) -> tuple[ExpressionMatrix, ExpressionMatrix, list[str]]:
    """Restrict both condition matrices to the differentially expressed genes.

    Returns ``(filtered_a, filtered_b, kept_genes)``.
    """
    kept = select_differential_genes(condition_a, condition_b, fraction)
    return condition_a.subset_genes(kept), condition_b.subset_genes(kept), kept
