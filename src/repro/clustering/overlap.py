"""Cluster overlap: matching filtered clusters against original-network clusters.

The paper compares every cluster of a filtered network with every cluster of
the original network using two measures:

* **node overlap** — the fraction of the original cluster's genes present in
  the filtered cluster;
* **edge overlap** — the fraction of the original cluster's edges present in
  the filtered cluster.

Clusters of the filtered network that share nothing with any original cluster
are *found* (newly uncovered structure); original clusters that share nothing
with any filtered cluster are *lost*.  Those categories, together with the
overlap values and the enrichment score, drive the TP/FP/FN/TN quadrant
analysis in :mod:`repro.clustering.evaluation`.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from typing import Callable, Optional

from .cluster import Cluster

__all__ = [
    "node_overlap",
    "edge_overlap",
    "jaccard_node_overlap",
    "ClusterMatch",
    "match_clusters",
    "lost_clusters",
    "found_clusters",
]

Vertex = Hashable


def node_overlap(original: Cluster, candidate: Cluster) -> float:
    """Fraction of the original cluster's nodes present in the candidate cluster."""
    orig = original.node_set()
    if not orig:
        return 0.0
    return len(orig & candidate.node_set()) / len(orig)


def edge_overlap(original: Cluster, candidate: Cluster) -> float:
    """Fraction of the original cluster's edges present in the candidate cluster."""
    orig = original.edge_set()
    if not orig:
        return 0.0
    return len(orig & candidate.edge_set()) / len(orig)


def jaccard_node_overlap(a: Cluster, b: Cluster) -> float:
    """Jaccard index of the two clusters' node sets (symmetric alternative)."""
    na, nb = a.node_set(), b.node_set()
    union = na | nb
    if not union:
        return 0.0
    return len(na & nb) / len(union)


@dataclass
class ClusterMatch:
    """The best original-network counterpart of one filtered cluster."""

    filtered: Cluster
    original: Optional[Cluster]
    node_overlap: float
    edge_overlap: float

    @property
    def is_found(self) -> bool:
        """True when the filtered cluster has no counterpart at all (newly found)."""
        return self.original is None or (self.node_overlap == 0.0 and self.edge_overlap == 0.0)


def match_clusters(
    original_clusters: Sequence[Cluster],
    filtered_clusters: Sequence[Cluster],
    key: Callable[[Cluster, Cluster], float] = node_overlap,
) -> list[ClusterMatch]:
    """Match every filtered cluster to its best-overlapping original cluster.

    ``key(original, filtered)`` determines "best" (node overlap by default);
    both node and edge overlap of the chosen pairing are reported.  Filtered
    clusters with zero overlap against every original cluster are matched to
    ``None`` — the paper's *found* clusters.
    """
    matches: list[ClusterMatch] = []
    for fc in filtered_clusters:
        best: Optional[Cluster] = None
        best_key = 0.0
        for oc in original_clusters:
            k = key(oc, fc)
            if k > best_key:
                best_key = k
                best = oc
        if best is None:
            matches.append(ClusterMatch(filtered=fc, original=None, node_overlap=0.0, edge_overlap=0.0))
        else:
            matches.append(
                ClusterMatch(
                    filtered=fc,
                    original=best,
                    node_overlap=node_overlap(best, fc),
                    edge_overlap=edge_overlap(best, fc),
                )
            )
    return matches


def found_clusters(matches: Sequence[ClusterMatch]) -> list[Cluster]:
    """Filtered clusters with no original counterpart (structure uncovered by filtering)."""
    return [m.filtered for m in matches if m.is_found]


def lost_clusters(
    original_clusters: Sequence[Cluster],
    filtered_clusters: Sequence[Cluster],
    key: Callable[[Cluster, Cluster], float] = node_overlap,
) -> list[Cluster]:
    """Original clusters that share nothing with any filtered cluster (lost to filtering)."""
    lost: list[Cluster] = []
    for oc in original_clusters:
        if all(key(oc, fc) == 0.0 for fc in filtered_clusters):
            lost.append(oc)
    return lost
