"""Cluster overlap: matching filtered clusters against original-network clusters.

The paper compares every cluster of a filtered network with every cluster of
the original network using two measures:

* **node overlap** — the fraction of the original cluster's genes present in
  the filtered cluster;
* **edge overlap** — the fraction of the original cluster's edges present in
  the filtered cluster.

Clusters of the filtered network that share nothing with any original cluster
are *found* (newly uncovered structure); original clusters that share nothing
with any filtered cluster are *lost*.  Those categories, together with the
overlap values and the enrichment score, drive the TP/FP/FN/TN quadrant
analysis in :mod:`repro.clustering.evaluation`.

The all-pairs matching used to walk every (original, filtered) pair through
Python set intersections; :func:`match_clusters` and :func:`lost_clusters`
now take an index-native fast path for the two standard measures: cluster
member (or edge) sets are mapped onto a shared integer universe, stacked into
0/1 membership matrices, and all pairwise intersection counts fall out of one
matrix product.  The generic-``key`` behaviour is retained as
``reference_match_clusters`` / ``reference_lost_clusters`` and the fast path
is pinned to it by the test suite.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .cluster import Cluster

__all__ = [
    "node_overlap",
    "edge_overlap",
    "jaccard_node_overlap",
    "ClusterMatch",
    "match_clusters",
    "match_and_lost_clusters",
    "lost_clusters",
    "found_clusters",
    "reference_match_clusters",
    "reference_lost_clusters",
]

Vertex = Hashable


def node_overlap(original: Cluster, candidate: Cluster) -> float:
    """Fraction of the original cluster's nodes present in the candidate cluster."""
    orig = original.node_set()
    if not orig:
        return 0.0
    return len(orig & candidate.node_set()) / len(orig)


def edge_overlap(original: Cluster, candidate: Cluster) -> float:
    """Fraction of the original cluster's edges present in the candidate cluster."""
    orig = original.edge_set()
    if not orig:
        return 0.0
    return len(orig & candidate.edge_set()) / len(orig)


def jaccard_node_overlap(a: Cluster, b: Cluster) -> float:
    """Jaccard index of the two clusters' node sets (symmetric alternative)."""
    na, nb = a.node_set(), b.node_set()
    union = na | nb
    if not union:
        return 0.0
    return len(na & nb) / len(union)


@dataclass
class ClusterMatch:
    """The best original-network counterpart of one filtered cluster."""

    filtered: Cluster
    original: Optional[Cluster]
    node_overlap: float
    edge_overlap: float

    @property
    def is_found(self) -> bool:
        """True when the filtered cluster has no counterpart at all (newly found)."""
        return self.original is None or (self.node_overlap == 0.0 and self.edge_overlap == 0.0)


# ----------------------------------------------------------------------
# index-native pairwise intersection counts
# ----------------------------------------------------------------------
def _count_matrix(
    original_sets: Sequence[set], filtered_sets: Sequence[set]
) -> np.ndarray:
    """All pairwise intersection sizes as one ``(|orig|, |filt|)`` array.

    Every element (node label or canonical edge tuple) is assigned a dense
    integer id; each cluster becomes one 0/1 row of a membership matrix and
    the counts are a single (BLAS) matrix product.  Counts are small exact
    integers in float64, so downstream divisions reproduce the set-based
    fractions bit-for-bit.
    """
    index: dict = {}
    for s in original_sets:
        for x in s:
            if x not in index:
                index[x] = len(index)
    for s in filtered_sets:
        for x in s:
            if x not in index:
                index[x] = len(index)
    u = max(len(index), 1)
    a = np.zeros((len(original_sets), u), dtype=np.float64)
    for r, s in enumerate(original_sets):
        if s:
            a[r, [index[x] for x in s]] = 1.0
    b = np.zeros((len(filtered_sets), u), dtype=np.float64)
    for r, s in enumerate(filtered_sets):
        if s:
            b[r, [index[x] for x in s]] = 1.0
    return a @ b.T


def _overlap_values(
    counts: np.ndarray, original_sizes: np.ndarray
) -> np.ndarray:
    """Per-pair overlap fractions: ``counts / |original|`` (0 for empty originals)."""
    safe = np.where(original_sizes == 0, 1.0, original_sizes)
    vals = counts / safe[:, None]
    vals[original_sizes == 0, :] = 0.0
    return vals


def _overlap_values_for(
    original_clusters: Sequence[Cluster],
    filtered_clusters: Sequence[Cluster],
    by_edges: bool,
) -> np.ndarray:
    """One overlap-fraction matrix (node- or edge-based) for every pair."""
    if by_edges:
        orig = [c.edge_set() for c in original_clusters]
        filt = [c.edge_set() for c in filtered_clusters]
    else:
        orig = [c.node_set() for c in original_clusters]
        filt = [c.node_set() for c in filtered_clusters]
    return _overlap_values(
        _count_matrix(orig, filt),
        np.array([len(s) for s in orig], dtype=np.float64),
    )


def _overlap_matrices(
    original_clusters: Sequence[Cluster], filtered_clusters: Sequence[Cluster]
) -> tuple[np.ndarray, np.ndarray]:
    """``(node_overlaps, edge_overlaps)`` matrices for every cluster pair."""
    return (
        _overlap_values_for(original_clusters, filtered_clusters, by_edges=False),
        _overlap_values_for(original_clusters, filtered_clusters, by_edges=True),
    )


def _is_fast_key(key: Callable[[Cluster, Cluster], float]) -> bool:
    """Whether ``key`` is one of the two measures the matrix fast path serves.

    The single dispatch predicate for :func:`match_clusters`,
    :func:`match_and_lost_clusters` and :func:`lost_clusters` — extend it in
    one place if another measure gains a matrix form.
    """
    return key is node_overlap or key is edge_overlap


def _matches_from_values(
    original_clusters: Sequence[Cluster],
    filtered_clusters: Sequence[Cluster],
    node_vals: np.ndarray,
    edge_vals: np.ndarray,
    key_vals: np.ndarray,
) -> list[ClusterMatch]:
    """Best-match selection off precomputed overlap matrices."""
    matches: list[ClusterMatch] = []
    for j, fc in enumerate(filtered_clusters):
        col = key_vals[:, j]
        best = int(np.argmax(col))  # first index attaining the maximum
        if col[best] <= 0.0:
            matches.append(
                ClusterMatch(filtered=fc, original=None, node_overlap=0.0, edge_overlap=0.0)
            )
        else:
            matches.append(
                ClusterMatch(
                    filtered=fc,
                    original=original_clusters[best],
                    node_overlap=float(node_vals[best, j]),
                    edge_overlap=float(edge_vals[best, j]),
                )
            )
    return matches


def match_clusters(
    original_clusters: Sequence[Cluster],
    filtered_clusters: Sequence[Cluster],
    key: Callable[[Cluster, Cluster], float] = node_overlap,
) -> list[ClusterMatch]:
    """Match every filtered cluster to its best-overlapping original cluster.

    ``key(original, filtered)`` determines "best" (node overlap by default);
    both node and edge overlap of the chosen pairing are reported.  Filtered
    clusters with zero overlap against every original cluster are matched to
    ``None`` — the paper's *found* clusters.

    For the two standard measures (:func:`node_overlap` / :func:`edge_overlap`)
    the matching runs on membership matrices (see :func:`_count_matrix`);
    any other ``key`` falls back to :func:`reference_match_clusters`.
    """
    if not _is_fast_key(key):
        return reference_match_clusters(original_clusters, filtered_clusters, key)
    if not original_clusters:
        return [
            ClusterMatch(filtered=fc, original=None, node_overlap=0.0, edge_overlap=0.0)
            for fc in filtered_clusters
        ]
    node_vals, edge_vals = _overlap_matrices(original_clusters, filtered_clusters)
    key_vals = node_vals if key is node_overlap else edge_vals
    return _matches_from_values(
        original_clusters, filtered_clusters, node_vals, edge_vals, key_vals
    )


def match_and_lost_clusters(
    original_clusters: Sequence[Cluster],
    filtered_clusters: Sequence[Cluster],
    key: Callable[[Cluster, Cluster], float] = node_overlap,
) -> tuple[list[ClusterMatch], list[Cluster]]:
    """:func:`match_clusters` and :func:`lost_clusters` in one pass.

    The workflow needs both over the same cluster lists; for the standard
    measures this computes the overlap matrices once and reads the matches
    and the zero-overlap (lost) originals off them.
    """
    if not _is_fast_key(key):
        return (
            reference_match_clusters(original_clusters, filtered_clusters, key),
            reference_lost_clusters(original_clusters, filtered_clusters, key),
        )
    if not original_clusters:
        return match_clusters(original_clusters, filtered_clusters, key), []
    if not filtered_clusters:
        return [], list(original_clusters)
    node_vals, edge_vals = _overlap_matrices(original_clusters, filtered_clusters)
    key_vals = node_vals if key is node_overlap else edge_vals
    matches = _matches_from_values(
        original_clusters, filtered_clusters, node_vals, edge_vals, key_vals
    )
    zero_rows = (key_vals == 0.0).all(axis=1)
    lost = [oc for r, oc in enumerate(original_clusters) if zero_rows[r]]
    return matches, lost


def found_clusters(matches: Sequence[ClusterMatch]) -> list[Cluster]:
    """Filtered clusters with no original counterpart (structure uncovered by filtering)."""
    return [m.filtered for m in matches if m.is_found]


def lost_clusters(
    original_clusters: Sequence[Cluster],
    filtered_clusters: Sequence[Cluster],
    key: Callable[[Cluster, Cluster], float] = node_overlap,
) -> list[Cluster]:
    """Original clusters that share nothing with any filtered cluster (lost to filtering)."""
    if not _is_fast_key(key):
        return reference_lost_clusters(original_clusters, filtered_clusters, key)
    if not original_clusters:
        return []
    if not filtered_clusters:
        return list(original_clusters)
    key_vals = _overlap_values_for(
        original_clusters, filtered_clusters, by_edges=key is edge_overlap
    )
    zero_rows = (key_vals == 0.0).all(axis=1)
    return [oc for r, oc in enumerate(original_clusters) if zero_rows[r]]


# ----------------------------------------------------------------------
# retained label-level references (generic-key behaviour)
# ----------------------------------------------------------------------
def reference_match_clusters(
    original_clusters: Sequence[Cluster],
    filtered_clusters: Sequence[Cluster],
    key: Callable[[Cluster, Cluster], float] = node_overlap,
) -> list[ClusterMatch]:
    """Seed all-pairs matching loop (the behavioural reference for the fast path)."""
    matches: list[ClusterMatch] = []
    for fc in filtered_clusters:
        best: Optional[Cluster] = None
        best_key = 0.0
        for oc in original_clusters:
            k = key(oc, fc)
            if k > best_key:
                best_key = k
                best = oc
        if best is None:
            matches.append(ClusterMatch(filtered=fc, original=None, node_overlap=0.0, edge_overlap=0.0))
        else:
            matches.append(
                ClusterMatch(
                    filtered=fc,
                    original=best,
                    node_overlap=node_overlap(best, fc),
                    edge_overlap=edge_overlap(best, fc),
                )
            )
    return matches


def reference_lost_clusters(
    original_clusters: Sequence[Cluster],
    filtered_clusters: Sequence[Cluster],
    key: Callable[[Cluster, Cluster], float] = node_overlap,
) -> list[Cluster]:
    """Seed lost-cluster scan (the behavioural reference for the fast path)."""
    lost: list[Cluster] = []
    for oc in original_clusters:
        if all(key(oc, fc) == 0.0 for fc in filtered_clusters):
            lost.append(oc)
    return lost
