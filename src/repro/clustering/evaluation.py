"""Quadrant evaluation of matched clusters: TP/FP/FN/TN, sensitivity, specificity.

Section IV.A of the paper classifies every (filtered cluster, best original
match) pair by its average edge enrichment score and its overlap:

=====================  =========================  =====================
                       high overlap (> 50%)        low overlap (< 50%)
=====================  =========================  =====================
high AEES              true positive               false negative
low AEES               false positive              true negative
=====================  =========================  =====================

High-AEES/high-overlap clusters are real structure preserved by the filter;
low-AEES/high-overlap clusters are dense noise both networks report;
high-AEES/low-overlap clusters are real structure only the filtered network
exposes (hidden by noise originally); low/low pairs are noise either way.
Sensitivity and specificity of a matching criterion (node- vs edge-overlap)
follow directly from the quadrant counts — the paper's Figure 8 shows node
overlap to be sensitive but unspecific and edge overlap the opposite.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..ontology.enrichment import EnrichmentScorer
from .cluster import Cluster
from .overlap import ClusterMatch

__all__ = [
    "Quadrant",
    "ScoredMatch",
    "QuadrantCounts",
    "classify_match",
    "classify_matches",
    "quadrant_counts",
    "sensitivity",
    "specificity",
    "EvaluationThresholds",
]


class Quadrant(str, Enum):
    """The four cluster categories of the paper's evaluation."""

    TRUE_POSITIVE = "TP"
    FALSE_POSITIVE = "FP"
    FALSE_NEGATIVE = "FN"
    TRUE_NEGATIVE = "TN"


@dataclass(frozen=True)
class EvaluationThresholds:
    """The two cut-offs of the quadrant analysis.

    ``aees_threshold`` separates biologically relevant clusters from noise
    (3.0 in the paper); ``overlap_threshold`` separates high from low overlap
    (50% in the paper).
    """

    aees_threshold: float = 3.0
    overlap_threshold: float = 0.5


@dataclass
class ScoredMatch:
    """A cluster match augmented with its enrichment score and quadrant."""

    match: ClusterMatch
    aees: float
    overlap: float
    quadrant: Quadrant

    @property
    def filtered(self) -> Cluster:
        return self.match.filtered

    @property
    def original(self) -> Optional[Cluster]:
        return self.match.original


@dataclass
class QuadrantCounts:
    """Counts of the four quadrants plus derived rates."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    def add(self, quadrant: Quadrant) -> None:
        if quadrant is Quadrant.TRUE_POSITIVE:
            self.tp += 1
        elif quadrant is Quadrant.FALSE_POSITIVE:
            self.fp += 1
        elif quadrant is Quadrant.FALSE_NEGATIVE:
            self.fn += 1
        else:
            self.tn += 1

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def sensitivity(self) -> float:
        """TP / (TP + FN); 0.0 when undefined."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def specificity(self) -> float:
        """TN / (TN + FP); 0.0 when undefined."""
        denom = self.tn + self.fp
        return self.tn / denom if denom else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "TP": self.tp,
            "FP": self.fp,
            "FN": self.fn,
            "TN": self.tn,
            "sensitivity": self.sensitivity,
            "specificity": self.specificity,
        }


def classify_match(
    match: ClusterMatch,
    scorer: EnrichmentScorer,
    thresholds: EvaluationThresholds = EvaluationThresholds(),
    overlap_attr: str = "node_overlap",
    aees: Optional[float] = None,
) -> ScoredMatch:
    """Classify one cluster match into its quadrant.

    ``overlap_attr`` selects which overlap measure drives the classification
    (``"node_overlap"`` or ``"edge_overlap"``) — the paper compares both.
    The AEES is computed on the *filtered* cluster, which is the object whose
    biological relevance is being judged; a precomputed value can be passed
    as ``aees`` so classifying the same matches under both overlap criteria
    scores every cluster exactly once.
    """
    if overlap_attr not in ("node_overlap", "edge_overlap"):
        raise ValueError("overlap_attr must be 'node_overlap' or 'edge_overlap'")
    if aees is None:
        aees = scorer.cluster(match.filtered.subgraph).aees
    overlap = getattr(match, overlap_attr)
    high_aees = aees >= thresholds.aees_threshold
    high_overlap = overlap > thresholds.overlap_threshold
    if high_aees and high_overlap:
        quadrant = Quadrant.TRUE_POSITIVE
    elif not high_aees and high_overlap:
        quadrant = Quadrant.FALSE_POSITIVE
    elif high_aees and not high_overlap:
        quadrant = Quadrant.FALSE_NEGATIVE
    else:
        quadrant = Quadrant.TRUE_NEGATIVE
    return ScoredMatch(match=match, aees=aees, overlap=overlap, quadrant=quadrant)


def classify_matches(
    matches: Sequence[ClusterMatch],
    scorer: EnrichmentScorer,
    thresholds: EvaluationThresholds = EvaluationThresholds(),
    overlap_attr: str = "node_overlap",
    aees: Optional[Sequence[float]] = None,
) -> list[ScoredMatch]:
    """Classify every match; see :func:`classify_match`.

    ``aees`` optionally supplies the per-match enrichment scores (aligned
    with ``matches``) so a second classification pass — the paper evaluates
    node- and edge-overlap criteria over the same matches — reuses the first
    pass's scores instead of re-walking every cluster's edges.

    When no scores are supplied, all matched clusters are scored in **one
    batched pass** over the scorer's array front-end
    (:meth:`~repro.ontology.enrichment.EnrichmentScorer.cluster_aees`) —
    bit-identical to scoring each cluster separately, but resolved against
    the distinct-term-pair memo table instead of one Python loop per edge.
    """
    if aees is None:
        aees = scorer.cluster_aees([m.filtered.subgraph for m in matches])
    elif len(aees) != len(matches):
        raise ValueError("aees must align one-to-one with matches")
    return [
        classify_match(m, scorer, thresholds, overlap_attr, aees=a)
        for m, a in zip(matches, aees)
    ]


def quadrant_counts(scored: Sequence[ScoredMatch]) -> QuadrantCounts:
    """Aggregate scored matches into quadrant counts."""
    counts = QuadrantCounts()
    for s in scored:
        counts.add(s.quadrant)
    return counts


def sensitivity(scored: Sequence[ScoredMatch]) -> float:
    """Sensitivity of a matching criterion over a set of scored matches."""
    return quadrant_counts(scored).sensitivity


def specificity(scored: Sequence[ScoredMatch]) -> float:
    """Specificity of a matching criterion over a set of scored matches."""
    return quadrant_counts(scored).specificity
