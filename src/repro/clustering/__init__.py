"""Clustering substrate: MCODE complex detection, overlap and quadrant evaluation."""

from .cluster import Cluster
from .evaluation import (
    EvaluationThresholds,
    Quadrant,
    QuadrantCounts,
    ScoredMatch,
    classify_match,
    classify_matches,
    quadrant_counts,
    sensitivity,
    specificity,
)
from .mcode import MCODEParams, highest_k_core, k_core, mcode_clusters, mcode_vertex_weights
from .overlap import (
    ClusterMatch,
    edge_overlap,
    found_clusters,
    jaccard_node_overlap,
    lost_clusters,
    match_clusters,
    node_overlap,
)

__all__ = [
    "Cluster",
    "MCODEParams",
    "mcode_clusters",
    "mcode_vertex_weights",
    "k_core",
    "highest_k_core",
    "node_overlap",
    "edge_overlap",
    "jaccard_node_overlap",
    "ClusterMatch",
    "match_clusters",
    "found_clusters",
    "lost_clusters",
    "Quadrant",
    "QuadrantCounts",
    "ScoredMatch",
    "EvaluationThresholds",
    "classify_match",
    "classify_matches",
    "quadrant_counts",
    "sensitivity",
    "specificity",
]
