"""MCODE clustering (Bader & Hogue 2003), the algorithm behind AllegroMCODE.

The paper identifies clusters with AllegroMCODE 1.0 under default parameters
and keeps every cluster scoring 3.0 or higher.  AllegroMCODE is a
GPU-accelerated port of MCODE, so the clusters it reports are MCODE clusters;
this module reimplements the original three-stage algorithm:

1. **Vertex weighting** — for every vertex the highest *k*-core of its open
   neighbourhood is found; the vertex weight is ``k × density`` of that core
   (the "core-clustering coefficient" scaled by the core number).
2. **Complex prediction** — complexes are seeded from the highest-weighted
   unvisited vertex and grown outward over vertices whose weight is within
   ``vertex_weight_percentage`` of the seed's weight.
3. **Post-processing** — optional *haircut* (iteratively strip singly
   connected vertices) and *fluff* (add dense neighbours), plus the 2-core
   requirement; complexes are scored ``density × size`` and returned sorted by
   score.

Defaults match the published MCODE defaults (haircut on, fluff off,
VWP = 0.2), which is what "run under default parameters" means.

Since PR 3 the public functions run **index-native on the CSR kernel**: the
graph is converted once (:class:`~repro.graph.csr.CSRGraph`), stage 1 computes
neighbourhood core numbers by bucketless min-degree peeling over integer
adjacency rows, stages 2–3 grow and prune complexes as index sets, and labels
reappear only when the final :class:`Cluster` objects are materialised.  The
seed label-level implementations are retained as ``reference_*`` functions and
the test suite pins cluster member sets, scores and ordering to them
bit-for-bit (``tests/test_csr_analysis.py``), the same discipline PR 1–2
applied to the chordality kernels and the sampler pipeline.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.graph import Graph
from ..kernels import jit_impl, resolve_kernels
from .cluster import Cluster

__all__ = [
    "MCODEParams",
    "mcode_vertex_weights",
    "mcode_clusters",
    "mcode_score",
    "k_core",
    "highest_k_core",
    "core_numbers_indices",
    "mcode_vertex_weights_indices",
    "mcode_clusters_indices",
    "IndexComplex",
    "reference_k_core",
    "reference_highest_k_core",
    "reference_mcode_vertex_weights",
    "reference_mcode_clusters",
]

Vertex = Hashable


@dataclass(frozen=True)
class MCODEParams:
    """MCODE tuning knobs (defaults follow Bader & Hogue / AllegroMCODE 1.0)."""

    vertex_weight_percentage: float = 0.2
    haircut: bool = True
    fluff: bool = False
    fluff_density_threshold: float = 0.5
    min_score: float = 3.0
    min_size: int = 3
    require_two_core: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.vertex_weight_percentage <= 1.0:
            raise ValueError("vertex_weight_percentage must lie in [0, 1]")
        if self.min_size < 1:
            raise ValueError("min_size must be >= 1")


@dataclass(frozen=True)
class IndexComplex:
    """One MCODE complex on vertex indices (pre-materialisation form)."""

    seed: int
    members: tuple[int, ...]
    score: float


# ----------------------------------------------------------------------
# CSR-native kernels
# ----------------------------------------------------------------------
def _peel_subset(
    row_sets: list[set[int]], members: Sequence[int], k: int
) -> set[int]:
    """Survivors of ``k``-core peeling restricted to ``members``.

    Iteratively removes members whose degree *within the member set* is below
    ``k``; the fixpoint is the (unique) k-core of the induced subgraph, so
    removal order cannot matter.  ``k = 2`` doubles as MCODE's haircut
    (degree ≤ 1 stripping reaches the same fixpoint).
    """
    alive = set(members)
    deg = {u: len(row_sets[u] & alive) for u in alive}
    stack = [u for u, d in deg.items() if d < k]
    while stack:
        u = stack.pop()
        if u not in alive:
            continue
        alive.discard(u)
        for w in row_sets[u]:
            if w in alive:
                deg[w] -= 1
                if deg[w] == k - 1:  # just crossed below k; queue exactly once
                    stack.append(w)
    return alive


def _subset_edge_count(row_sets: list[set[int]], members: set[int]) -> int:
    """Number of edges of the subgraph induced by ``members``."""
    return sum(len(row_sets[u] & members) for u in members) // 2


def _core_decompose(
    members: Sequence[int], adj: "Sequence[set[int]] | dict[int, set[int]]"
) -> tuple[int, dict[int, int]]:
    """Core numbers of a small induced subgraph via lazy min-degree peeling.

    Returns ``(kmax, core)`` where ``core[u]`` is the classic core number
    (the largest k such that u belongs to the k-core) and ``kmax`` the
    degeneracy — the highest non-empty core is exactly
    ``{u : core[u] == kmax}``.
    """
    deg = {u: len(adj[u]) for u in members}
    heap = [(d, u) for u, d in deg.items()]
    heapq.heapify(heap)
    removed: set[int] = set()
    core: dict[int, int] = {}
    k = 0
    while heap:
        d, u = heapq.heappop(heap)
        if u in removed or d != deg[u]:
            continue
        if d > k:
            k = d
        core[u] = k
        removed.add(u)
        for w in adj[u]:
            if w not in removed:
                deg[w] -= 1
                heapq.heappush(heap, (deg[w], w))
    return k, core


def _top_core(
    members: Sequence[int], adj: dict[int, set[int]]
) -> Optional[tuple[int, set[int]]]:
    """Highest non-empty k-core of a small induced subgraph, by level peeling.

    Returns ``(kmax, core_vertices)`` or ``None`` for an edgeless input.
    Cheaper than a full core decomposition for the stage-1 inner loop: no
    heap, one incremental peel per level, and only the final level's vertex
    set is copied.
    """
    alive = set(members)
    deg = {u: len(adj[u]) for u in members}
    k = 0
    best: Optional[tuple[int, set[int]]] = None
    while alive:
        k += 1
        stack = [u for u in alive if deg[u] < k]
        while stack:
            u = stack.pop()
            if u not in alive:
                continue
            alive.remove(u)
            for w in adj[u]:
                if w in alive:
                    deg[w] -= 1
                    if deg[w] == k - 1:
                        stack.append(w)
        if alive:
            best = (k, set(alive))
    return best


def core_numbers_indices(csr: CSRGraph) -> np.ndarray:
    """Core number of every vertex of ``csr`` as one ``int64`` array."""
    n = csr.n_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    _, core = _core_decompose(range(n), csr.neighbor_sets())
    out = np.zeros(n, dtype=np.int64)
    for u, c in core.items():
        out[u] = c
    return out


def mcode_vertex_weights_indices(csr: CSRGraph, kernels: Optional[str] = None) -> np.ndarray:
    """Stage 1 on indices: weight = k × density of each neighbourhood's top core.

    ``kernels`` selects the execution tier (see :mod:`repro.kernels`); the
    ``jit`` tier runs the identical per-vertex peel with a preserved weight
    expression, so the float64 results are bit-identical.  At this index
    level ``reference`` is served by the ``numpy`` tier.
    """
    n = csr.n_vertices
    if resolve_kernels(kernels) == "jit":
        return jit_impl("mcode_weights")(csr.indptr, csr.indices)
    weights = np.zeros(n, dtype=np.float64)
    row_sets = csr.neighbor_sets()
    rows = csr.neighbor_lists()
    for v in range(n):
        nbrs = rows[v]
        if len(nbrs) < 2:
            continue
        nv = row_sets[v]
        adj = {u: row_sets[u] & nv for u in nbrs}
        top = _top_core(nbrs, adj)
        if top is None:
            continue
        kmax, core_set = top
        s = len(core_set)
        if s < 2:
            continue
        e = sum(len(adj[u] & core_set) for u in core_set) // 2
        weights[v] = float(kmax) * (2.0 * e / (s * (s - 1)))
    return weights


def _grow_complex_indices(
    rows: list[list[int]],
    weights: list[float],
    seed: int,
    seen: set[int],
    threshold_fraction: float,
) -> list[int]:
    """Stage 2 growth on indices — mirrors the reference DFS exactly.

    ``rows`` preserve the :class:`Graph` neighbour iteration order (the CSR
    is built in insertion order), so the member list comes out in the same
    sequence as the label reference.
    """
    bar = weights[seed] * (1.0 - threshold_fraction)
    members = [seed]
    in_complex = {seed}
    stack = [seed]
    while stack:
        u = stack.pop()
        for w in rows[u]:
            if w in in_complex or w in seen:
                continue
            if weights[w] > bar:
                in_complex.add(w)
                members.append(w)
                stack.append(w)
    return members


def _fluff_indices(
    rows: list[list[int]],
    row_sets: list[set[int]],
    members: list[int],
    density_threshold: float,
) -> list[int]:
    """Fluff on indices: add neighbours with dense closed neighbourhoods."""
    member_set = set(members)
    added: list[int] = []
    for v in members:
        for w in rows[v]:
            if w in member_set:
                continue
            closed = row_sets[w] | {w}
            s = len(closed)
            if s < 2:
                continue
            e = sum(len(row_sets[x] & closed) for x in closed) // 2
            if 2.0 * e / (s * (s - 1)) > density_threshold:
                member_set.add(w)
                added.append(w)
    return members + added


def mcode_clusters_indices(
    csr: CSRGraph,
    params: Optional[MCODEParams] = None,
    kernels: Optional[str] = None,
) -> list[IndexComplex]:
    """Run MCODE on a CSR view and return index-level complexes, sorted.

    The result order and scores are exactly those of
    :func:`reference_mcode_clusters` (ties broken by ``repr`` of the vertex
    labels, as in the seed); only the label materialisation is left to the
    caller.

    ``kernels`` selects the execution tier for stage 1 and the peel/count
    loops (see :mod:`repro.kernels`); the ``jit`` tier additionally skips
    materialising the Python neighbour sets unless fluff needs them.
    """
    params = params or MCODEParams()
    kernels = resolve_kernels(kernels)
    use_jit = kernels == "jit"
    n = csr.n_vertices
    rows = csr.neighbor_lists()
    row_sets = None if use_jit and not params.fluff else csr.neighbor_sets()
    weights = mcode_vertex_weights_indices(csr, kernels=kernels).tolist()
    reprs = [repr(v) for v in csr.labels]
    order = sorted(range(n), key=lambda i: (-weights[i], reprs[i]))
    seen: set[int] = set()
    raw: list[tuple[int, list[int]]] = []
    for seed in order:
        if seed in seen or weights[seed] <= 0.0:
            continue
        members = _grow_complex_indices(
            rows, weights, seed, seen, params.vertex_weight_percentage
        )
        seen.update(members)
        if len(members) >= 2:
            raw.append((seed, members))

    prune = params.haircut or params.require_two_core
    complexes: list[IndexComplex] = []
    for seed, members in raw:
        if params.fluff:
            members = _fluff_indices(rows, row_sets, members, params.fluff_density_threshold)
        if prune:
            if use_jit:
                member_arr = np.fromiter(members, dtype=np.int64, count=len(members))
                alive = jit_impl("peel")(csr.indptr, csr.indices, member_arr, 2)
                survivors = {u for u in members if alive[u]}
            else:
                survivors = _peel_subset(row_sets, members, 2)
        else:
            survivors = set(members)
        n_sub = len(survivors)
        if n_sub < params.min_size:
            continue
        if n_sub < 2:
            density = 0.0
        else:
            if use_jit:
                surv_arr = np.fromiter(survivors, dtype=np.int64, count=n_sub)
                e_sub = int(jit_impl("subset_edge_count")(csr.indptr, csr.indices, surv_arr))
            else:
                e_sub = _subset_edge_count(row_sets, survivors)
            density = 2.0 * e_sub / (n_sub * (n_sub - 1))
        score = density * n_sub
        if score < params.min_score:
            continue
        kept = tuple(u for u in members if u in survivors)
        complexes.append(IndexComplex(seed=seed, members=kept, score=score))
    complexes.sort(key=lambda c: (-c.score, -len(c.members), reprs[c.seed]))
    return complexes


# ----------------------------------------------------------------------
# public label-level API (CSR-native, labels only at the boundary)
# ----------------------------------------------------------------------
def k_core(graph: Graph, k: int, kernels: Optional[str] = None) -> Graph:
    """Return the ``k``-core of ``graph`` (maximal subgraph with min degree ≥ k).

    ``kernels`` selects the execution tier: ``reference`` reruns the seed
    full-rescan peel, ``jit`` the compiled peel; the k-core is unique, so
    every tier returns the same subgraph.
    """
    if graph.n_vertices == 0 or k <= 0:
        return graph.copy()
    kernels = resolve_kernels(kernels)
    if kernels == "reference":
        return reference_k_core(graph, k)
    csr = CSRGraph.from_graph(graph)
    if kernels == "jit":
        mask = jit_impl("peel")(
            csr.indptr, csr.indices, np.arange(csr.n_vertices, dtype=np.int64), int(k)
        )
        return graph.subgraph([csr.labels[i] for i in np.flatnonzero(mask)])
    alive = _peel_subset(csr.neighbor_sets(), range(csr.n_vertices), k)
    return graph.subgraph([csr.labels[i] for i in range(csr.n_vertices) if i in alive])


def highest_k_core(graph: Graph) -> tuple[int, Graph]:
    """Return ``(k, core)`` for the highest non-empty k-core of ``graph``.

    The empty graph yields ``(0, empty graph)``; an edgeless graph yields
    ``(0, full copy)`` — both matching the peeling reference.
    """
    if graph.n_vertices == 0:
        return 0, graph.copy()
    csr = CSRGraph.from_graph(graph)
    core = core_numbers_indices(csr)
    kmax = int(core.max())
    if kmax == 0:
        return 0, graph.copy()
    keep = np.flatnonzero(core == kmax)
    return kmax, graph.subgraph([csr.labels[int(i)] for i in keep])


def _weight_density(core: Graph) -> float:
    """MCODE neighbourhood density: 2·E / (V·(V−1)); 0 for fewer than 2 vertices."""
    n = core.n_vertices
    if n < 2:
        return 0.0
    return 2.0 * core.n_edges / (n * (n - 1))


def mcode_vertex_weights(graph: Graph, kernels: Optional[str] = None) -> dict[Vertex, float]:
    """Stage 1: weight every vertex by k × density of its neighbourhood's highest core."""
    kernels = resolve_kernels(kernels)
    if kernels == "reference":
        return reference_mcode_vertex_weights(graph)
    csr = CSRGraph.from_graph(graph)
    weights = mcode_vertex_weights_indices(csr, kernels=kernels)
    return {v: float(w) for v, w in zip(csr.labels, weights.tolist())}


def mcode_score(subgraph: Graph) -> float:
    """MCODE complex score: density × number of vertices."""
    return _weight_density(subgraph) * subgraph.n_vertices


def mcode_clusters(
    graph: Graph,
    params: Optional[MCODEParams] = None,
    source: str = "",
    csr: Optional[CSRGraph] = None,
    kernels: Optional[str] = None,
) -> list[Cluster]:
    """Run MCODE on ``graph`` and return clusters sorted by descending score.

    Only clusters meeting ``params.min_score`` and ``params.min_size`` (after
    post-processing) are returned; the paper's threshold of 3.0 deliberately
    discards bare triangles ("scores of 2.9 or lower tend to indicate small
    cliques, or K3 graphs").

    The computation is index-native: ``graph`` is converted to a CSR view
    once (or ``csr`` — which must be ``CSRGraph.from_graph(graph)``-equivalent,
    e.g. the cached :meth:`SyntheticStudy.network_csr` view — is reused), and
    indices are mapped back to labels exactly once, when the returned
    :class:`Cluster` objects are built.
    """
    params = params or MCODEParams()
    kernels = resolve_kernels(kernels)
    if kernels == "reference":
        return reference_mcode_clusters(graph, params, source)
    if csr is None:
        csr = CSRGraph.from_graph(graph)
    labels = csr.labels
    clusters: list[Cluster] = []
    for i, complex_ in enumerate(mcode_clusters_indices(csr, params, kernels=kernels)):
        members = [labels[u] for u in complex_.members]
        clusters.append(
            Cluster(
                cluster_id=i,
                members=members,
                subgraph=graph.subgraph(members),
                score=complex_.score,
                seed=labels[complex_.seed],
                source=source,
            )
        )
    return clusters


# ----------------------------------------------------------------------
# retained seed implementations (behavioural references)
# ----------------------------------------------------------------------
def reference_k_core(graph: Graph, k: int) -> Graph:
    """Seed ``k_core``: repeated full-vertex rescans on the label graph."""
    work = graph.copy()
    changed = True
    while changed:
        changed = False
        for v in list(work.vertices()):
            if work.degree(v) < k:
                work.remove_vertex(v)
                changed = True
    return work


def reference_highest_k_core(graph: Graph) -> tuple[int, Graph]:
    """Seed ``highest_k_core``: peel k = 1, 2, … until the core empties."""
    if graph.n_vertices == 0:
        return 0, graph.copy()
    k = 1
    best_k = 0
    best = graph.copy()
    current = graph.copy()
    while True:
        current = reference_k_core(current, k)
        if current.n_vertices == 0:
            break
        best_k, best = k, current.copy()
        k += 1
    return best_k, best


def reference_mcode_vertex_weights(graph: Graph) -> dict[Vertex, float]:
    """Seed stage 1: per-vertex ``Graph.subgraph`` + iterated label k-cores."""
    weights: dict[Vertex, float] = {}
    for v in graph.vertices():
        nbrs = graph.neighbors(v)
        if len(nbrs) < 2:
            weights[v] = 0.0
            continue
        neighborhood = graph.subgraph(nbrs)
        k, core = reference_highest_k_core(neighborhood)
        weights[v] = float(k) * _weight_density(core)
    return weights


def _grow_complex(
    graph: Graph,
    weights: dict[Vertex, float],
    seed: Vertex,
    seen: set[Vertex],
    threshold_fraction: float,
) -> list[Vertex]:
    """Stage 2 growth: BFS over vertices whose weight clears the seed-derived bar."""
    bar = weights[seed] * (1.0 - threshold_fraction)
    members = [seed]
    in_complex = {seed}
    stack = [seed]
    while stack:
        u = stack.pop()
        for w in graph.neighbors(u):
            if w in in_complex or w in seen:
                continue
            if weights[w] > bar:
                in_complex.add(w)
                members.append(w)
                stack.append(w)
    return members


def _haircut(subgraph: Graph) -> Graph:
    """Iteratively remove vertices of degree ≤ 1 (MCODE's haircut post-processing)."""
    work = subgraph.copy()
    changed = True
    while changed:
        changed = False
        for v in list(work.vertices()):
            if work.degree(v) <= 1:
                work.remove_vertex(v)
                changed = True
    return work


def _fluff(graph: Graph, members: list[Vertex], density_threshold: float) -> list[Vertex]:
    """Add neighbours whose closed-neighbourhood density clears the fluff threshold."""
    member_set = set(members)
    added: list[Vertex] = []
    for v in members:
        for w in graph.neighbors(v):
            if w in member_set:
                continue
            closed = graph.subgraph([w] + graph.neighbors(w))
            if _weight_density(closed) > density_threshold:
                member_set.add(w)
                added.append(w)
    return members + added


def reference_mcode_clusters(
    graph: Graph,
    params: Optional[MCODEParams] = None,
    source: str = "",
) -> list[Cluster]:
    """Seed ``mcode_clusters``: the pure label-level three-stage pipeline."""
    params = params or MCODEParams()
    weights = reference_mcode_vertex_weights(graph)
    order = sorted(graph.vertices(), key=lambda v: (-weights[v], repr(v)))
    seen: set[Vertex] = set()
    raw: list[tuple[Vertex, list[Vertex]]] = []
    for seed in order:
        if seed in seen or weights[seed] <= 0.0:
            continue
        members = _grow_complex(graph, weights, seed, seen, params.vertex_weight_percentage)
        seen.update(members)
        if len(members) >= 2:
            raw.append((seed, members))

    clusters: list[Cluster] = []
    for seed, members in raw:
        if params.fluff:
            members = _fluff(graph, members, params.fluff_density_threshold)
        sub = graph.subgraph(members)
        if params.haircut:
            sub = _haircut(sub)
        if params.require_two_core:
            sub = reference_k_core(sub, 2)
        if sub.n_vertices < params.min_size:
            continue
        score = mcode_score(sub)
        if score < params.min_score:
            continue
        kept_members = [v for v in members if sub.has_vertex(v)]
        clusters.append(
            Cluster(
                cluster_id=-1,
                members=kept_members,
                subgraph=sub,
                score=score,
                seed=seed,
                source=source,
            )
        )
    clusters.sort(key=lambda c: (-c.score, -c.n_vertices, repr(c.seed)))
    for i, c in enumerate(clusters):
        c.cluster_id = i
    return clusters
