"""MCODE clustering (Bader & Hogue 2003), the algorithm behind AllegroMCODE.

The paper identifies clusters with AllegroMCODE 1.0 under default parameters
and keeps every cluster scoring 3.0 or higher.  AllegroMCODE is a
GPU-accelerated port of MCODE, so the clusters it reports are MCODE clusters;
this module reimplements the original three-stage algorithm:

1. **Vertex weighting** — for every vertex the highest *k*-core of its open
   neighbourhood is found; the vertex weight is ``k × density`` of that core
   (the "core-clustering coefficient" scaled by the core number).
2. **Complex prediction** — complexes are seeded from the highest-weighted
   unvisited vertex and grown outward over vertices whose weight is within
   ``vertex_weight_percentage`` of the seed's weight.
3. **Post-processing** — optional *haircut* (iteratively strip singly
   connected vertices) and *fluff* (add dense neighbours), plus the 2-core
   requirement; complexes are scored ``density × size`` and returned sorted by
   score.

Defaults match the published MCODE defaults (haircut on, fluff off,
VWP = 0.2), which is what "run under default parameters" means.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from typing import Optional

from ..graph.graph import Graph
from .cluster import Cluster

__all__ = ["MCODEParams", "mcode_vertex_weights", "mcode_clusters", "k_core", "highest_k_core"]

Vertex = Hashable


@dataclass(frozen=True)
class MCODEParams:
    """MCODE tuning knobs (defaults follow Bader & Hogue / AllegroMCODE 1.0)."""

    vertex_weight_percentage: float = 0.2
    haircut: bool = True
    fluff: bool = False
    fluff_density_threshold: float = 0.5
    min_score: float = 3.0
    min_size: int = 3
    require_two_core: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.vertex_weight_percentage <= 1.0:
            raise ValueError("vertex_weight_percentage must lie in [0, 1]")
        if self.min_size < 1:
            raise ValueError("min_size must be >= 1")


def k_core(graph: Graph, k: int) -> Graph:
    """Return the ``k``-core of ``graph`` (maximal subgraph with min degree ≥ k)."""
    work = graph.copy()
    changed = True
    while changed:
        changed = False
        for v in list(work.vertices()):
            if work.degree(v) < k:
                work.remove_vertex(v)
                changed = True
    return work


def highest_k_core(graph: Graph) -> tuple[int, Graph]:
    """Return ``(k, core)`` for the highest non-empty k-core of ``graph``.

    The empty graph yields ``(0, empty graph)``.
    """
    if graph.n_vertices == 0:
        return 0, graph.copy()
    k = 1
    best_k = 0
    best = graph.copy()
    current = graph.copy()
    while True:
        current = k_core(current, k)
        if current.n_vertices == 0:
            break
        best_k, best = k, current.copy()
        k += 1
    return best_k, best


def _weight_density(core: Graph) -> float:
    """MCODE neighbourhood density: 2·E / (V·(V−1)); 0 for fewer than 2 vertices."""
    n = core.n_vertices
    if n < 2:
        return 0.0
    return 2.0 * core.n_edges / (n * (n - 1))


def mcode_vertex_weights(graph: Graph) -> dict[Vertex, float]:
    """Stage 1: weight every vertex by k × density of its neighbourhood's highest core."""
    weights: dict[Vertex, float] = {}
    for v in graph.vertices():
        nbrs = graph.neighbors(v)
        if len(nbrs) < 2:
            weights[v] = 0.0
            continue
        neighborhood = graph.subgraph(nbrs)
        k, core = highest_k_core(neighborhood)
        weights[v] = float(k) * _weight_density(core)
    return weights


def _grow_complex(
    graph: Graph,
    weights: dict[Vertex, float],
    seed: Vertex,
    seen: set[Vertex],
    threshold_fraction: float,
) -> list[Vertex]:
    """Stage 2 growth: BFS over vertices whose weight clears the seed-derived bar."""
    bar = weights[seed] * (1.0 - threshold_fraction)
    members = [seed]
    in_complex = {seed}
    stack = [seed]
    while stack:
        u = stack.pop()
        for w in graph.neighbors(u):
            if w in in_complex or w in seen:
                continue
            if weights[w] > bar:
                in_complex.add(w)
                members.append(w)
                stack.append(w)
    return members


def _haircut(subgraph: Graph) -> Graph:
    """Iteratively remove vertices of degree ≤ 1 (MCODE's haircut post-processing)."""
    work = subgraph.copy()
    changed = True
    while changed:
        changed = False
        for v in list(work.vertices()):
            if work.degree(v) <= 1:
                work.remove_vertex(v)
                changed = True
    return work


def _fluff(graph: Graph, members: list[Vertex], density_threshold: float) -> list[Vertex]:
    """Add neighbours whose closed-neighbourhood density clears the fluff threshold."""
    member_set = set(members)
    added: list[Vertex] = []
    for v in members:
        for w in graph.neighbors(v):
            if w in member_set:
                continue
            closed = graph.subgraph([w] + graph.neighbors(w))
            if _weight_density(closed) > density_threshold:
                member_set.add(w)
                added.append(w)
    return members + added


def mcode_score(subgraph: Graph) -> float:
    """MCODE complex score: density × number of vertices."""
    return _weight_density(subgraph) * subgraph.n_vertices


def mcode_clusters(
    graph: Graph,
    params: Optional[MCODEParams] = None,
    source: str = "",
) -> list[Cluster]:
    """Run MCODE on ``graph`` and return clusters sorted by descending score.

    Only clusters meeting ``params.min_score`` and ``params.min_size`` (after
    post-processing) are returned; the paper's threshold of 3.0 deliberately
    discards bare triangles ("scores of 2.9 or lower tend to indicate small
    cliques, or K3 graphs").
    """
    params = params or MCODEParams()
    weights = mcode_vertex_weights(graph)
    order = sorted(graph.vertices(), key=lambda v: (-weights[v], repr(v)))
    seen: set[Vertex] = set()
    raw: list[tuple[Vertex, list[Vertex]]] = []
    for seed in order:
        if seed in seen or weights[seed] <= 0.0:
            continue
        members = _grow_complex(graph, weights, seed, seen, params.vertex_weight_percentage)
        seen.update(members)
        if len(members) >= 2:
            raw.append((seed, members))

    clusters: list[Cluster] = []
    for seed, members in raw:
        if params.fluff:
            members = _fluff(graph, members, params.fluff_density_threshold)
        sub = graph.subgraph(members)
        if params.haircut:
            sub = _haircut(sub)
        if params.require_two_core:
            sub = k_core(sub, 2)
        if sub.n_vertices < params.min_size:
            continue
        score = mcode_score(sub)
        if score < params.min_score:
            continue
        kept_members = [v for v in members if sub.has_vertex(v)]
        clusters.append(
            Cluster(
                cluster_id=-1,
                members=kept_members,
                subgraph=sub,
                score=score,
                seed=seed,
                source=source,
            )
        )
    clusters.sort(key=lambda c: (-c.score, -c.n_vertices, repr(c.seed)))
    for i, c in enumerate(clusters):
        c.cluster_id = i
    return clusters
