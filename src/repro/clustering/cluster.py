"""Cluster container shared by the clustering and evaluation code."""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass, field
from typing import Optional

from ..graph.graph import Graph, edge_key

__all__ = ["Cluster"]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


@dataclass
class Cluster:
    """A candidate gene complex found by a clustering algorithm.

    Attributes
    ----------
    cluster_id:
        Index assigned by the clustering run (0 = highest scoring).
    members:
        The cluster's vertices, seed first.
    subgraph:
        The induced subgraph of the clustered network.
    score:
        The MCODE score (density × size); the paper keeps clusters ≥ 3.0.
    seed:
        The seed vertex the complex was grown from.
    source:
        Free-form provenance label (e.g. ``"CRE/chordal/high_degree/64P"``).
    """

    cluster_id: int
    members: list[Vertex]
    subgraph: Graph
    score: float
    seed: Optional[Vertex] = None
    source: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def n_vertices(self) -> int:
        return len(self.members)

    @property
    def n_edges(self) -> int:
        return self.subgraph.n_edges

    @property
    def density(self) -> float:
        return self.subgraph.density()

    def node_set(self) -> set[Vertex]:
        return set(self.members)

    def edge_set(self) -> set[Edge]:
        return {edge_key(u, v) for u, v in self.subgraph.iter_edges()}

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self.node_set()

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster(id={self.cluster_id}, n_vertices={self.n_vertices}, "
            f"n_edges={self.n_edges}, score={self.score:.2f}, source={self.source!r})"
        )
